package runtime

import (
	"fmt"
	stdruntime "runtime"
	"sync"
	"sync/atomic"

	"acr/internal/ckptstore"
)

// This file routes the machine's state capture and restore through the
// tiered checkpoint store: per-task pup buffers are chunked and
// checksummed at capture time (ckptstore.Capture) and land in a pluggable
// Store keyed by {replica, node, task, epoch}, instead of being handed
// around as flat [][][]byte blobs.

// CaptureOptions parameterizes CaptureReplica. The zero value is a sane
// default: auto-sized worker split, default chunk size, no recycling, fast
// single-pass packing.
type CaptureOptions struct {
	// ChunkSize is the checksum chunk granularity (<= 0 selects
	// checksum.DefaultChunkSize).
	ChunkSize int
	// Workers is the outer task-parallel worker count (<= 0 selects
	// GOMAXPROCS, capped at the task count). Serialization of one task's
	// state is inherently serial, but nothing couples distinct tasks.
	Workers int
	// ChunkWorkers is the inner per-checkpoint checksum parallelism. The
	// two levels split the same cores: when the outer pool already
	// saturates GOMAXPROCS (many tasks per replica, the common case),
	// inner parallelism can only add scheduling overhead, so 1 is right.
	// The single-task-per-node shape is the opposite: the outer pool can
	// use at most NodesPerReplica workers, and chunk-level parallelism is
	// the only way to put the remaining cores on one big buffer.
	// <= 0 auto-sizes to GOMAXPROCS / effective outer workers (min 1),
	// which degenerates to exactly the old hardcoded 1 when the outer
	// pool is saturated.
	ChunkWorkers int
	// Pool, if non-nil, supplies retired checkpoints whose buffers are
	// reused for packing and checksumming (zero-allocation steady state).
	Pool *ckptstore.Pool
	// ForceTwoPass disables the size-hint single-pass packing fast path,
	// pinning the original Sizing+Packing behavior. Used by the benchmark
	// harness's serial baseline.
	ForceTwoPass bool
	// PatchCapture lets write-tracked tasks patch their two-epochs-ago
	// capture buffer in place instead of memcpy'ing every clean byte from
	// the previous stream. Only set it when the caller owns the store's
	// lifecycle exclusively: every epoch older than the newest committed
	// one must be evicted before the next capture begins, and no reader may
	// retain Bytes() of an evicted epoch — the controller's commit protocol
	// guarantees exactly this. A store whose checkpoints outlive eviction
	// (a caller-supplied store, a delta tier retaining anchors) must leave
	// it off, or captures would scribble over retained views.
	PatchCapture bool
}

// CaptureReplica packs every task of the replica and stores the chunked,
// checksummed checkpoints under the epoch. The caller must guarantee the
// replica is quiescent (parked in Progress, completed, or stopped), same
// as PackTask. Tasks are packed and checksummed concurrently per
// opts.Workers/opts.ChunkWorkers; each task's buffer comes from opts.Pool
// when one is attached, and packing skips the Sizing traversal whenever
// the task's previous packed size still fits (pup.PackInto).
func (m *Machine) CaptureReplica(rep int, epoch uint64, st ckptstore.Store, opts CaptureOptions) error {
	nodes, tasks := m.cfg.NodesPerReplica, m.cfg.TasksPerNode
	total := nodes * tasks
	workers := opts.Workers
	if workers <= 0 {
		workers = stdruntime.GOMAXPROCS(0)
	}
	if workers > total {
		workers = total
	}
	chunkWorkers := opts.ChunkWorkers
	if chunkWorkers <= 0 {
		chunkWorkers = stdruntime.GOMAXPROCS(0) / workers
		if chunkWorkers < 1 {
			chunkWorkers = 1
		}
	}
	captureOne := func(i int) error {
		addr := Addr{Replica: rep, Node: i / tasks, Task: i % tasks}
		return m.captureAndStore(addr, epoch, st, opts, chunkWorkers)
	}
	if workers == 1 {
		// Inline fast path: a single worker needs no goroutine, waitgroup,
		// or atomics, which keeps steady-state capture allocation-free.
		for i := 0; i < total; i++ {
			if err := captureOne(i); err != nil {
				return err
			}
		}
		return nil
	}
	var next atomic.Int64
	var firstErr atomic.Value
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= total || firstErr.Load() != nil {
					return
				}
				if err := captureOne(i); err != nil {
					firstErr.CompareAndSwap(nil, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if err := firstErr.Load(); err != nil {
		return err.(error)
	}
	return nil
}

// CaptureTask packs one task's state and stores its chunked, checksummed
// checkpoint under the epoch — the per-(node, task) capture hook the
// pipelined commit path in internal/core drives, where task checkpoints
// flow into exchange and comparison as soon as they exist instead of
// waiting for the whole replica. Quiescence rules match CaptureReplica:
// the task must be parked, completed, or its replica stopped. Safe to call
// concurrently for distinct tasks; opts.ChunkWorkers <= 0 selects 1 (the
// caller is assumed to already be task-parallel).
func (m *Machine) CaptureTask(addr Addr, epoch uint64, st ckptstore.Store, opts CaptureOptions) error {
	chunkWorkers := opts.ChunkWorkers
	if chunkWorkers <= 0 {
		chunkWorkers = 1
	}
	return m.captureAndStore(addr, epoch, st, opts, chunkWorkers)
}

// captureAndStore is the shared per-task capture body behind
// CaptureReplica's worker pool and the exported CaptureTask hook.
func (m *Machine) captureAndStore(addr Addr, epoch uint64, st ckptstore.Store, opts CaptureOptions, chunkWorkers int) error {
	var ck *ckptstore.Checkpoint
	if opts.ForceTwoPass {
		// The pinned serial baseline: two-pass pack, full checksum, no
		// splice base retained.
		data, err := m.PackTask(addr)
		if err != nil {
			return fmt.Errorf("runtime: capture %v: %w", addr, err)
		}
		ck = ckptstore.CaptureInto(nil, data, opts.ChunkSize, chunkWorkers)
	} else {
		hint := m.sizeHint(addr)
		var buf []byte
		var recycled *ckptstore.Checkpoint
		if opts.Pool != nil {
			recycled = opts.Pool.Get(hint)
			buf = recycled.Scratch()
		}
		var err error
		ck, err = m.captureTaskInto(addr, recycled, buf, hint, opts.ChunkSize, chunkWorkers, opts.PatchCapture)
		if err != nil {
			return fmt.Errorf("runtime: capture %v: %w", addr, err)
		}
	}
	key := ckptstore.Key{Replica: addr.Replica, Node: addr.Node, Task: addr.Task, Epoch: epoch}
	if err := st.Put(key, ck); err != nil {
		return fmt.Errorf("runtime: store %v: %w", key, err)
	}
	return nil
}

// RestartReplicaFromStore restores every task of the replica from the
// checkpoints stored under the epoch and launches fresh incarnations. The
// epoch must be complete: a missing task checkpoint (ErrNotFound) is an
// error, not factory state — restarting part of a replica from factory
// state would silently desynchronize it from its buddy. Callers that lose
// an epoch (buddy-pair double faults dropping the in-memory copies)
// escalate to an older tier instead. Every checkpoint is fetched before
// any task restarts, so a failed restore leaves the replica stopped and
// retryable against another store. The replica must be quiescent
// (StopReplica).
func (m *Machine) RestartReplicaFromStore(rep int, epoch uint64, st ckptstore.Store) error {
	nodes, tasks := m.cfg.NodesPerReplica, m.cfg.TasksPerNode
	ckpts := make([][][]byte, nodes)
	for n := 0; n < nodes; n++ {
		ckpts[n] = make([][]byte, tasks)
		for t := 0; t < tasks; t++ {
			ck, err := st.Get(ckptstore.Key{Replica: rep, Node: n, Task: t, Epoch: epoch})
			if err != nil {
				return fmt.Errorf("runtime: restore r%d/n%d/t%d@e%d: %w", rep, n, t, epoch, err)
			}
			ckpts[n][t] = ck.Bytes()
		}
	}
	return m.RestartReplica(rep, ckpts)
}

package runtime

import (
	"errors"
	"fmt"
	stdruntime "runtime"
	"sync"
	"sync/atomic"

	"acr/internal/ckptstore"
)

// This file routes the machine's state capture and restore through the
// tiered checkpoint store: per-task pup buffers are chunked and
// checksummed at capture time (ckptstore.Capture) and land in a pluggable
// Store keyed by {replica, node, task, epoch}, instead of being handed
// around as flat [][][]byte blobs.

// CaptureReplica packs every task of the replica and stores the chunked,
// checksummed checkpoints under the epoch. The caller must guarantee the
// replica is quiescent (parked in Progress, completed, or stopped), same
// as PackTask. Tasks are packed and checksummed concurrently on up to
// workers goroutines (<= 0 selects GOMAXPROCS): serialization of one
// task's state is inherently serial, but nothing couples distinct tasks.
func (m *Machine) CaptureReplica(rep int, epoch uint64, st ckptstore.Store, chunkSize, workers int) error {
	nodes, tasks := m.cfg.NodesPerReplica, m.cfg.TasksPerNode
	total := nodes * tasks
	if workers <= 0 {
		workers = stdruntime.GOMAXPROCS(0)
	}
	if workers > total {
		workers = total
	}
	var next atomic.Int64
	var firstErr atomic.Value
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= total || firstErr.Load() != nil {
					return
				}
				addr := Addr{Replica: rep, Node: i / tasks, Task: i % tasks}
				data, err := m.PackTask(addr)
				if err != nil {
					firstErr.CompareAndSwap(nil, fmt.Errorf("runtime: capture %v: %w", addr, err))
					return
				}
				ck := ckptstore.Capture(data, chunkSize, 1)
				key := ckptstore.Key{Replica: rep, Node: addr.Node, Task: addr.Task, Epoch: epoch}
				if err := st.Put(key, ck); err != nil {
					firstErr.CompareAndSwap(nil, fmt.Errorf("runtime: store %v: %w", key, err))
					return
				}
			}
		}()
	}
	wg.Wait()
	if err := firstErr.Load(); err != nil {
		return err.(error)
	}
	return nil
}

// RestartReplicaFromStore restores every task of the replica from the
// checkpoints stored under the epoch and launches fresh incarnations. A
// task with no checkpoint at the epoch restarts from factory state (the
// job-start case). The replica must be quiescent (StopReplica).
func (m *Machine) RestartReplicaFromStore(rep int, epoch uint64, st ckptstore.Store) error {
	nodes, tasks := m.cfg.NodesPerReplica, m.cfg.TasksPerNode
	ckpts := make([][][]byte, nodes)
	for n := 0; n < nodes; n++ {
		ckpts[n] = make([][]byte, tasks)
		for t := 0; t < tasks; t++ {
			ck, err := st.Get(ckptstore.Key{Replica: rep, Node: n, Task: t, Epoch: epoch})
			switch {
			case err == nil:
				ckpts[n][t] = ck.Bytes()
			case errors.Is(err, ckptstore.ErrNotFound):
				// Factory state.
			default:
				return fmt.Errorf("runtime: restore r%d/n%d/t%d@e%d: %w", rep, n, t, epoch, err)
			}
		}
	}
	return m.RestartReplica(rep, ckpts)
}

// Package runtime is an in-process message-driven parallel runtime — the
// Charm++ substitute on which ACR is built (see DESIGN.md).
//
// A Machine hosts two replicas of the same program plus a pool of spare
// nodes. Each replica consists of logical nodes, each hosting a fixed
// number of tasks (chares). Every task runs its own goroutine, owns a
// mailbox, and communicates exclusively by asynchronous messages; there is
// no shared state between tasks, so a replica behaves like a distributed
// machine. Logical nodes map to physical nodes; killing a physical node is
// a fail-stop event (it stops sending and receiving, exactly the paper's
// "no-response" injection), after which the logical node can be remapped to
// a spare.
//
// The runtime provides the mechanisms ACR needs and nothing more:
// asynchronous sends, any-source receives, progress reporting through a
// pluggable gate (the hook for the §2.2 consensus protocol), fail-stop
// kills with heartbeat-based detection, epoch-tagged rollback, and
// task-state capture through the pup framework.
package runtime

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"acr/internal/chaos/point"
	"acr/internal/ckptstore"
	"acr/internal/pup"
)

// Errors returned by task-context operations. Application Run loops should
// simply propagate them; the runtime interprets them.
var (
	// ErrKilled reports that the task's physical node suffered a
	// fail-stop error.
	ErrKilled = errors.New("runtime: node killed")
	// ErrRollback reports that the task's replica is being rolled back;
	// the task will be restarted from a checkpoint.
	ErrRollback = errors.New("runtime: replica rollback")
	// ErrStopped reports that the machine is shutting down.
	ErrStopped = errors.New("runtime: machine stopped")
	// ErrSpareExhausted reports that ReplaceWithSpare found the spare pool
	// empty. Callers branch on it with errors.Is — the recovery ladder
	// folds the failed node onto a survivor (degraded mode) instead of
	// aborting when this is the failure.
	ErrSpareExhausted = errors.New("runtime: spare pool exhausted")
)

// Addr is the logical address of a task.
type Addr struct {
	Replica int // 0 or 1
	Node    int // logical node index within the replica
	Task    int // task index within the node
}

func (a Addr) String() string {
	return fmt.Sprintf("r%d/n%d/t%d", a.Replica, a.Node, a.Task)
}

// Message is an application message between tasks of one replica.
type Message struct {
	From Addr
	Tag  int
	Data any

	epoch uint64
}

// Program is the application code run by every task. Run is invoked on a
// fresh goroutine at job start and again after every rollback, with the
// receiver state freshly restored from a checkpoint; it must inspect its
// state (e.g. an iteration counter) and continue from there. Run returns
// nil on completion and propagates ctx errors otherwise.
type Program interface {
	pup.Pupable
	Run(ctx *Ctx) error
}

// Factory creates the zero-state program for a task.
type Factory func(addr Addr) Program

// Gate observes task progress and may pause tasks — the hook through which
// ACR's automatic checkpoint protocol (§2.2) steers the application.
type Gate interface {
	// Report is called by the task at the end of iteration iter. A nil
	// return lets the task continue immediately ("in most cases, this
	// call returns immediately"); otherwise the task blocks until the
	// channel is closed.
	Report(addr Addr, iter int) <-chan struct{}
	// Done is called when the task's Run returns successfully.
	Done(addr Addr)
}

// NopGate never pauses tasks.
type NopGate struct{}

// Report implements Gate.
func (NopGate) Report(Addr, int) <-chan struct{} { return nil }

// Done implements Gate.
func (NopGate) Done(Addr) {}

// Config describes a machine.
type Config struct {
	// NodesPerReplica is the logical node count of each replica.
	NodesPerReplica int
	// TasksPerNode is the number of tasks hosted by each node.
	TasksPerNode int
	// Spares is the number of spare physical nodes reserved at job launch
	// (§2.1).
	Spares int
	// Factory creates task programs.
	Factory Factory
	// Gate observes progress; nil means NopGate.
	Gate Gate
	// MailboxCap is the per-task mailbox capacity (default 4096).
	MailboxCap int
	// HeartbeatInterval is how often each live node refreshes its
	// heartbeat; HeartbeatTimeout is the silence after which the failure
	// detector declares the node dead. Zero values disable detection
	// (failures must then be observed by the caller directly).
	HeartbeatInterval time.Duration
	HeartbeatTimeout  time.Duration
	// MsgChecker, if non-nil, folds every outgoing message into a
	// per-task stream checksum for message-based SDC detection — the
	// §3.3 alternative, provided as a comparative baseline.
	MsgChecker *MsgChecker
	// Chaos, if non-nil, receives fault-injection point firings at message
	// delivery (point.RuntimeDeliver, payload replaceable), progress
	// reports (point.RuntimeProgress), and heartbeat refreshes
	// (point.RuntimeHeartbeat). See internal/chaos.
	Chaos point.Hook
}

func (c *Config) validate() error {
	switch {
	case c.NodesPerReplica <= 0:
		return fmt.Errorf("runtime: NodesPerReplica must be positive")
	case c.TasksPerNode <= 0:
		return fmt.Errorf("runtime: TasksPerNode must be positive")
	case c.Spares < 0:
		return fmt.Errorf("runtime: negative spare count")
	case c.Factory == nil:
		return fmt.Errorf("runtime: Factory is required")
	}
	if c.Gate == nil {
		c.Gate = NopGate{}
	}
	if c.MailboxCap <= 0 {
		c.MailboxCap = 4096
	}
	return nil
}

// physNode is one physical node. Fail-stop is modelled by the killed flag
// plus a closed channel that unblocks anything waiting on the node.
type physNode struct {
	id     int
	mu     sync.Mutex
	killed bool
	dead   chan struct{} // closed on kill
	// lastBeat is the heartbeat timestamp, guarded by mu.
	lastBeat time.Time
}

func (n *physNode) kill() {
	n.mu.Lock()
	defer n.mu.Unlock()
	if !n.killed {
		n.killed = true
		close(n.dead)
	}
}

func (n *physNode) alive() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return !n.killed
}

func (n *physNode) beat(now time.Time) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if !n.killed {
		n.lastBeat = now
	}
}

func (n *physNode) lastBeatTime() time.Time {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.lastBeat
}

// taskSlot is the runtime home of one logical task. The slot persists
// across rollbacks and node replacements; the goroutine and mailbox are
// replaced each incarnation.
type taskSlot struct {
	addr Addr

	mu        sync.Mutex
	prog      Program
	mbox      chan Message
	abort     chan struct{} // closed to force this incarnation to exit
	running   bool
	completed bool
	gen       uint64 // incarnation counter
	// sizeHint is the task's packed size at the last capture; it seeds the
	// next capture's buffer so packing can skip the Sizing traversal when
	// the state size is stable (the common steady-state case).
	sizeHint int
	// lastCap is the checkpoint this slot produced at its most recent
	// capture — the splice base for the next capture's dirty path. Its
	// lifetime is guaranteed by the commit protocol: eviction only drops
	// strictly older epochs, and every restore/rollback funnels through
	// RestartReplica, which clears it (a fresh incarnation is blind).
	lastCap *ckptstore.Checkpoint
	// dirtyScratch is the reusable range buffer handed to the program's
	// DirtyTracker at capture time.
	dirtyScratch []pup.Range
	// patchCap is the slot's capture from two epochs ago, retained as the
	// patch-in-place base for the next capture (CaptureOptions.PatchCapture):
	// by the time it is reused, the commit protocol has evicted it from the
	// store, and its Retained flag keeps the pool from handing its buffer to
	// anyone else. patchDirty is the dirty set of the most recent capture —
	// exactly the ranges by which patchCap's stream differs from lastCap's —
	// and is valid whenever patchCap is non-nil. patchScratch is the
	// reusable union buffer. All three are cleared by RestartReplica along
	// with lastCap and by any capture that could not splice.
	patchCap     *ckptstore.Checkpoint
	patchDirty   []pup.Range
	patchScratch []pup.Range
}

// Failure describes a detected hard error.
type Failure struct {
	Replica int // replica of the failed logical node
	Node    int // logical node index
	Phys    int // physical node id
	Time    time.Time
}

// Machine hosts the two replicas and the spare pool.
type Machine struct {
	cfg Config

	mu     sync.RWMutex
	phys   []*physNode
	route  [2][]int // (replica, logical node) -> physical node id
	spares []int    // free physical node ids
	epoch  [2]uint64
	slots  [2][][]*taskSlot // [replica][node][task]
	// folded[rep] marks logical nodes currently sharing a survivor's
	// physical node after spare exhaustion (degraded mode).
	folded  [2]map[int]bool
	expands atomic.Int64 // folded nodes re-expanded onto freed spares

	appErr     error
	completed  int
	total      int
	doneCh     chan struct{}
	doneClosed bool

	failures chan Failure
	stopped  chan struct{}
	stopOnce sync.Once
	// startMu serializes Start against Stop: Stop must not Wait on the
	// WaitGroup while a concurrent Start is still issuing its first Adds
	// (an external owner, e.g. a fleet scheduler shutting down, may stop a
	// machine whose controller has only just begun running it).
	startMu sync.Mutex
	wg      sync.WaitGroup // task goroutines + detector

	// packFast / packSlow count task packs that hit the single-pass
	// size-hint path versus the two-pass Sizing+Packing fallback.
	packFast, packSlow atomic.Int64
	// dirtyChunksPacked / dirtyChunksReused split tracked captures'
	// chunks into recomputed-dirty versus spliced-from-previous-epoch;
	// dirtyBytesReused counts payload bytes memcpy'd from the previous
	// stream instead of re-encoded.
	dirtyChunksPacked, dirtyChunksReused, dirtyBytesReused atomic.Int64
}

// PackCounters returns how many task packs took the single-pass size-hint
// fast path versus the two-pass Sizing+Packing fallback.
func (m *Machine) PackCounters() (fast, slow int64) {
	return m.packFast.Load(), m.packSlow.Load()
}

// DirtyCounters returns the incremental-capture counters: chunks whose
// checksums were recomputed (dirty), chunks whose checksums were spliced
// from the previous epoch (clean), and payload bytes copied from the
// previous packed stream instead of re-encoded. All zero while no task
// tracks writes.
func (m *Machine) DirtyCounters() (chunksPacked, chunksReused, bytesReused int64) {
	return m.dirtyChunksPacked.Load(), m.dirtyChunksReused.Load(), m.dirtyBytesReused.Load()
}

// ReplicaStateHint returns the replica's summed packed-size hints from the
// last capture — a cheap estimate of total state size, 0 before the first
// capture.
func (m *Machine) ReplicaStateHint(rep int) int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	total := 0
	for n := 0; n < m.cfg.NodesPerReplica; n++ {
		for t := 0; t < m.cfg.TasksPerNode; t++ {
			s := m.slots[rep][n][t]
			s.mu.Lock()
			total += s.sizeHint
			s.mu.Unlock()
		}
	}
	return total
}

// NewMachine allocates a machine; call Start to launch the tasks.
func NewMachine(cfg Config) (*Machine, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	m := &Machine{
		cfg:      cfg,
		failures: make(chan Failure, 2*cfg.NodesPerReplica+cfg.Spares),
		stopped:  make(chan struct{}),
		doneCh:   make(chan struct{}),
	}
	total := 2*cfg.NodesPerReplica + cfg.Spares
	now := time.Now()
	for i := 0; i < total; i++ {
		m.phys = append(m.phys, &physNode{id: i, dead: make(chan struct{}), lastBeat: now})
	}
	for rep := 0; rep < 2; rep++ {
		m.route[rep] = make([]int, cfg.NodesPerReplica)
		m.slots[rep] = make([][]*taskSlot, cfg.NodesPerReplica)
		for n := 0; n < cfg.NodesPerReplica; n++ {
			m.route[rep][n] = rep*cfg.NodesPerReplica + n
			m.slots[rep][n] = make([]*taskSlot, cfg.TasksPerNode)
			for t := 0; t < cfg.TasksPerNode; t++ {
				addr := Addr{Replica: rep, Node: n, Task: t}
				m.slots[rep][n][t] = &taskSlot{
					addr: addr,
					prog: cfg.Factory(addr),
				}
			}
		}
	}
	for s := 0; s < cfg.Spares; s++ {
		m.spares = append(m.spares, 2*cfg.NodesPerReplica+s)
	}
	m.total = 2 * cfg.NodesPerReplica * cfg.TasksPerNode
	return m, nil
}

// NodesPerReplica returns the logical node count of each replica.
func (m *Machine) NodesPerReplica() int { return m.cfg.NodesPerReplica }

// TasksPerNode returns the task count per node.
func (m *Machine) TasksPerNode() int { return m.cfg.TasksPerNode }

// SpareCount returns the number of unused spare nodes.
func (m *Machine) SpareCount() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.spares)
}

// Failures delivers detected hard errors (one event per failed node).
func (m *Machine) Failures() <-chan Failure { return m.failures }

// Start launches every task goroutine and the failure detector. Starting a
// machine that has already been stopped is a no-op: the stop wins, and Wait
// reports ErrStopped.
func (m *Machine) Start() {
	m.startMu.Lock()
	defer m.startMu.Unlock()
	select {
	case <-m.stopped:
		return
	default:
	}
	m.mu.Lock()
	for rep := 0; rep < 2; rep++ {
		for n := 0; n < m.cfg.NodesPerReplica; n++ {
			for t := 0; t < m.cfg.TasksPerNode; t++ {
				m.startSlotLocked(m.slots[rep][n][t])
			}
		}
	}
	m.mu.Unlock()
	if m.cfg.HeartbeatInterval > 0 && m.cfg.HeartbeatTimeout > 0 {
		m.wg.Add(1)
		go m.detectorLoop()
	}
}

// Stop aborts everything; Wait will return ErrStopped unless the job had
// already finished. Safe to call concurrently with Start: the startMu
// acquisition orders Stop's WaitGroup wait after any in-flight Start's
// goroutine launches, and later Starts see the closed stop channel.
func (m *Machine) Stop() {
	m.stopOnce.Do(func() { close(m.stopped) })
	m.startMu.Lock()
	m.startMu.Unlock() //nolint:staticcheck // empty section: barrier against in-flight Start
	m.wg.Wait()
}

// Done reports whether every task of both replicas is currently completed.
// Unlike Wait it never blocks, and it reflects rollbacks: a replica
// restarted from a checkpoint makes Done false again until the rerun
// finishes.
func (m *Machine) Done() bool {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.completed == m.total && m.appErr == nil
}

// Wait blocks until every task of both replicas has completed (returns
// nil), the application reported an error, or the machine was stopped.
// Completion is level-triggered: a rollback of completed tasks (StopReplica)
// re-arms Wait until the rerun finishes.
func (m *Machine) Wait() error {
	for {
		m.mu.RLock()
		done := m.doneCh
		finished := m.completed == m.total
		err := m.appErr
		m.mu.RUnlock()
		if err != nil {
			return err
		}
		if finished {
			return nil
		}
		select {
		case <-done:
			// Re-verify: the channel may be stale after a rollback.
		case <-m.stopped:
			m.mu.RLock()
			defer m.mu.RUnlock()
			if m.appErr != nil {
				return m.appErr
			}
			if m.completed == m.total {
				return nil
			}
			return ErrStopped
		}
	}
}

// physFor returns the physical node currently backing a logical node.
func (m *Machine) physFor(rep, node int) *physNode {
	return m.phys[m.route[rep][node]]
}

// Alive reports whether the physical node backing the logical node is
// alive.
func (m *Machine) Alive(rep, node int) bool {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.physFor(rep, node).alive()
}

// Kill fail-stops the physical node currently backing the logical node:
// from this instant it neither sends nor receives (§6.1's no-response
// scheme). Returns the physical node id.
func (m *Machine) Kill(rep, node int) int {
	m.mu.RLock()
	p := m.physFor(rep, node)
	m.mu.RUnlock()
	p.kill()
	return p.id
}

// ReplaceWithSpare remaps the logical node onto a spare physical node. The
// tasks of the node are not restarted; use RestartTasks with a checkpoint.
func (m *Machine) ReplaceWithSpare(rep, node int) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.spares) == 0 {
		return fmt.Errorf("replace r%d/n%d: %w", rep, node, ErrSpareExhausted)
	}
	if m.physFor(rep, node).alive() {
		return fmt.Errorf("runtime: node r%d/n%d is alive; refusing to replace", rep, node)
	}
	id := m.spares[0]
	m.spares = m.spares[1:]
	m.route[rep][node] = id
	delete(m.folded[rep], node)
	return nil
}

// FoldOntoSurvivor remaps a dead logical node onto the least-loaded live
// physical node of the same replica — the Charm++-style shrink that keeps
// a job running in degraded mode when the spare pool is exhausted. Load is
// the number of logical nodes a physical node currently backs; ties break
// toward the lowest PHYSICAL node id, so the fold target is a pure
// function of the current route state, independent of the remap history
// that produced it (a logical-index tie-break would pick a different
// survivor after a spare replacement reordered the route, and fleet-level
// chaos reports would stop being byte-identical). Returns the logical node
// whose physical node now also hosts the folded node.
//
// Folding is transparent to the tasks: logical addressing (mailboxes,
// routes) is unchanged, and the replica is restarted from a checkpoint by
// the caller as part of hard-error recovery, so the fresh incarnations
// observe the new physical mapping.
func (m *Machine) FoldOntoSurvivor(rep, node int) (int, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.physFor(rep, node).alive() {
		return -1, fmt.Errorf("runtime: node r%d/n%d is alive; refusing to fold", rep, node)
	}
	load := make(map[int]int)
	for n := 0; n < m.cfg.NodesPerReplica; n++ {
		if n == node {
			continue
		}
		if p := m.physFor(rep, n); p.alive() {
			load[p.id]++
		}
	}
	best, bestNode := -1, -1
	for n := 0; n < m.cfg.NodesPerReplica; n++ {
		if n == node {
			continue
		}
		p := m.physFor(rep, n)
		if !p.alive() {
			continue
		}
		if best < 0 || load[p.id] < load[best] ||
			(load[p.id] == load[best] && p.id < best) {
			best, bestNode = p.id, n
		}
	}
	if best < 0 {
		return -1, fmt.Errorf("runtime: replica %d has no live survivor to fold r%d/n%d onto", rep, rep, node)
	}
	m.route[rep][node] = best
	if m.folded[rep] == nil {
		m.folded[rep] = make(map[int]bool)
	}
	m.folded[rep][node] = true
	return bestNode, nil
}

// AddSpare models a repaired physical node rejoining the machine: a fresh
// node is appended and placed in the spare pool. Returns its physical id.
// The node participates in failure detection through its fail-stop flag
// (the detector confirms suspicions against it), not through a heartbeat
// beater.
func (m *Machine) AddSpare() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	id := len(m.phys)
	m.phys = append(m.phys, &physNode{id: id, dead: make(chan struct{}), lastBeat: time.Now()})
	m.spares = append(m.spares, id)
	return id
}

// TakeSpare withdraws one unused spare from the pool — the fleet scheduler's
// preemption primitive: a spare taken from a low-priority healthy job is
// re-granted to a degraded job via its Controller.FreeSpare. The newest
// spare is taken so the FIFO order ReplaceWithSpare consumes is untouched.
// Returns the withdrawn physical id, or ok=false when no spare is free.
func (m *Machine) TakeSpare() (int, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.spares) == 0 {
		return -1, false
	}
	id := m.spares[len(m.spares)-1]
	m.spares = m.spares[:len(m.spares)-1]
	return id, true
}

// ExpandFolded remaps folded logical nodes back onto free spares (lowest
// replica/node first) and returns how many nodes were re-expanded. Live
// incarnations of a re-expanded node keep watching the survivor's
// fail-stop channel until their next restart; a later death of the
// survivor at worst costs those tasks a spurious kill, which the replica
// rollback that death triggers anyway subsumes.
func (m *Machine) ExpandFolded() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for rep := 0; rep < 2; rep++ {
		for node := 0; node < m.cfg.NodesPerReplica; node++ {
			if !m.folded[rep][node] || len(m.spares) == 0 {
				continue
			}
			id := m.spares[0]
			m.spares = m.spares[1:]
			m.route[rep][node] = id
			delete(m.folded[rep], node)
			n++
		}
	}
	m.expands.Add(int64(n))
	return n
}

// FoldedCount returns the number of logical nodes currently folded onto
// survivors (the machine's degraded-node count).
func (m *Machine) FoldedCount() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.folded[0]) + len(m.folded[1])
}

// ExpandCount returns how many folded nodes have been re-expanded onto
// spares over the machine's lifetime.
func (m *Machine) ExpandCount() int64 { return m.expands.Load() }

// recordCompletion is called by the task runner on successful completion.
func (m *Machine) recordCompletion() {
	m.mu.Lock()
	m.completed++
	if m.completed == m.total && !m.doneClosed {
		m.doneClosed = true
		close(m.doneCh)
	}
	m.mu.Unlock()
}

func (m *Machine) recordAppError(err error) {
	m.mu.Lock()
	if m.appErr == nil {
		m.appErr = err
	}
	m.mu.Unlock()
	m.stopOnce.Do(func() { close(m.stopped) })
}

// detectorLoop implements heartbeat failure detection: every live node's
// heartbeat is refreshed by a per-node ticker goroutine; this loop declares
// nodes dead after HeartbeatTimeout of silence. Detection is reported once
// per physical node.
func (m *Machine) detectorLoop() {
	defer m.wg.Done()
	// Per-node beaters. Snapshot the launch-time node set: nodes added
	// later (AddSpare) are covered by the detector's fail-stop
	// confirmation rather than a beater.
	m.mu.RLock()
	launchPhys := append([]*physNode(nil), m.phys...)
	m.mu.RUnlock()
	beatStop := make(chan struct{})
	var beatWG sync.WaitGroup
	for _, p := range launchPhys {
		p := p
		beatWG.Add(1)
		go func() {
			defer beatWG.Done()
			tick := time.NewTicker(m.cfg.HeartbeatInterval)
			defer tick.Stop()
			for {
				select {
				case now := <-tick.C:
					if h := m.cfg.Chaos; h != nil {
						// A hook that sleeps here delays this node's
						// heartbeat past the refresh it was due for.
						h.Fire(point.RuntimeHeartbeat, &point.Info{Replica: -1, Node: p.id, Task: -1})
					}
					p.beat(now)
				case <-p.dead:
					return
				case <-beatStop:
					return
				}
			}
		}()
	}
	defer func() {
		close(beatStop)
		beatWG.Wait()
	}()

	reported := make(map[int]bool)
	tick := time.NewTicker(m.cfg.HeartbeatInterval)
	defer tick.Stop()
	for {
		select {
		case <-m.stopped:
			return
		case now := <-tick.C:
			m.mu.RLock()
			type hit struct{ rep, node, phys int }
			var hits []hit
			for rep := 0; rep < 2; rep++ {
				for n := 0; n < m.cfg.NodesPerReplica; n++ {
					p := m.physFor(rep, n)
					if reported[p.id] {
						continue
					}
					// The heartbeat timeout is the detection mechanism;
					// confirming against the fail-stop flag suppresses
					// false suspicions caused by goroutine-scheduling
					// stalls of the beater, which have no counterpart in
					// the modelled system (a live BG/P node always
					// heartbeats).
					if now.Sub(p.lastBeatTime()) > m.cfg.HeartbeatTimeout && !p.alive() {
						hits = append(hits, hit{rep, n, p.id})
					}
				}
			}
			m.mu.RUnlock()
			for _, h := range hits {
				reported[h.phys] = true
				select {
				case m.failures <- Failure{Replica: h.rep, Node: h.node, Phys: h.phys, Time: now}:
				case <-m.stopped:
					return
				}
			}
		}
	}
}

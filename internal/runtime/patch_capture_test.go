package runtime

import (
	"bytes"
	"testing"

	"acr/internal/ckptstore"
	"acr/internal/pup"
)

// TestCaptureReplicaPatchInPlace drives the patch-in-place ladder through
// the same store lifecycle the controller's commit protocol guarantees:
// capture epoch E, then evict everything older than E. The third capture
// must reuse the first capture's *Checkpoint — struct, Sums, and payload
// buffer — verbatim (pointer equality against the store), stay
// byte-identical to a from-scratch pack, and keep the pool out of the loop
// (retained checkpoints are dropped at eviction, not recycled).
func TestCaptureReplicaPatchInPlace(t *testing.T) {
	const nVals = 512
	const chunkSize = 256
	m := newTestMachine(t, Config{
		NodesPerReplica: 1,
		TasksPerNode:    1,
		Factory:         trackedVecFactory(nVals),
	})
	m.Start()
	if err := m.Wait(); err != nil {
		t.Fatal(err)
	}
	st := ckptstore.NewMem()
	pool := ckptstore.NewPool(0)
	st.SetPool(pool)
	opts := CaptureOptions{ChunkSize: chunkSize, Workers: 1, ChunkWorkers: 1, Pool: pool, PatchCapture: true}
	addr := Addr{Replica: 0, Node: 0, Task: 0}
	key := func(epoch uint64) ckptstore.Key {
		return ckptstore.Key{Replica: 0, Node: 0, Task: 0, Epoch: epoch}
	}
	touch := func(el int, v float64) {
		m.CorruptTask(addr, func(p pup.Pupable) {
			g := p.(*trackedVecProg)
			spans := pup.FieldSpans(g)
			g.Vals[el] = v
			g.Iter++
			g.MarkSpan(spans["vals"].Slice(el, el+1, 8))
			g.MarkSpan(spans["iter"])
		})
	}
	captureAndCommit := func(epoch uint64) *ckptstore.Checkpoint {
		t.Helper()
		if err := m.CaptureReplica(0, epoch, st, opts); err != nil {
			t.Fatal(err)
		}
		st.Evict(epoch)
		ck, err := st.Get(key(epoch))
		if err != nil {
			t.Fatal(err)
		}
		return ck
	}

	ck1 := captureAndCommit(1) // blind full capture
	touch(10, -10)
	ck2 := captureAndCommit(2) // copy-splice; ck1 becomes the patch base
	if !ck1.Retained() {
		t.Fatal("epoch-1 checkpoint should be retained as the patch base")
	}
	if pool.Len() != 0 {
		t.Fatalf("retained checkpoint leaked into the pool (len %d)", pool.Len())
	}

	touch(20, -20)
	ck3 := captureAndCommit(3) // patch in place into ck1's buffer
	if ck3 != ck1 {
		t.Fatal("patch capture did not reuse the two-epochs-ago checkpoint in place")
	}
	if ck2 == ck3 {
		t.Fatal("patch capture must not write into the splice base")
	}

	// Byte-identity and checksum consistency against a from-scratch pack.
	var want []byte
	var err error
	m.CorruptTask(addr, func(p pup.Pupable) { want, err = pup.Pack(p) })
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ck3.Bytes(), want) {
		t.Fatal("patched capture payload differs from a fresh pack")
	}
	fresh := ckptstore.Capture(append([]byte(nil), want...), chunkSize, 1)
	if fresh.Root != ck3.Root {
		t.Fatalf("patched root %x != fresh root %x", ck3.Root, fresh.Root)
	}

	// The ladder keeps cycling: epoch 4 patches into ck2's buffer.
	touch(30, -30)
	if ck4 := captureAndCommit(4); ck4 != ck2 {
		t.Fatal("epoch-4 capture did not cycle onto the other retained buffer")
	}
}

// TestRestartDropsPatchState is the recovery half: a restored incarnation
// must forget its patch base (patching against a pre-restore stream would
// splice stale bytes), fall back to a full capture, and only re-arm the
// ladder through the normal blind -> copy-splice -> patch sequence.
func TestRestartDropsPatchState(t *testing.T) {
	m := newTestMachine(t, Config{
		NodesPerReplica: 1,
		TasksPerNode:    1,
		Factory:         trackedVecFactory(64),
	})
	m.Start()
	if err := m.Wait(); err != nil {
		t.Fatal(err)
	}
	st := ckptstore.NewMem()
	pool := ckptstore.NewPool(0)
	st.SetPool(pool)
	opts := CaptureOptions{ChunkSize: 128, Workers: 1, ChunkWorkers: 1, Pool: pool, PatchCapture: true}
	addr := Addr{Replica: 0, Node: 0, Task: 0}

	mark := func(el int) {
		m.CorruptTask(addr, func(p pup.Pupable) {
			g := p.(*trackedVecProg)
			spans := pup.FieldSpans(g)
			g.Vals[el] = float64(-el)
			g.MarkSpan(spans["vals"].Slice(el, el+1, 8))
		})
	}
	for e := uint64(1); e <= 3; e++ {
		if err := m.CaptureReplica(0, e, st, opts); err != nil {
			t.Fatal(err)
		}
		st.Evict(e)
		mark(int(e))
	}
	m.mu.RLock()
	s := m.slots[0][0][0]
	m.mu.RUnlock()
	s.mu.Lock()
	armed := s.patchCap != nil
	s.mu.Unlock()
	if !armed {
		t.Fatal("precondition: three committed captures should arm the patch ladder")
	}

	m.StopReplica(0)
	if err := m.RestartReplicaFromStore(0, 3, st); err != nil {
		t.Fatal(err)
	}
	s.mu.Lock()
	patchCap, lastCap := s.patchCap, s.lastCap
	s.mu.Unlock()
	if patchCap != nil || lastCap != nil {
		t.Fatal("restart must drop the patch base and splice base")
	}
	if err := m.Wait(); err != nil {
		t.Fatal(err)
	}

	// The fresh incarnation's capture is blind and full, and must still be
	// byte-identical to a from-scratch pack.
	if err := m.CaptureReplica(0, 4, st, opts); err != nil {
		t.Fatal(err)
	}
	ck, err := st.Get(ckptstore.Key{Replica: 0, Node: 0, Task: 0, Epoch: 4})
	if err != nil {
		t.Fatal(err)
	}
	var want []byte
	m.CorruptTask(addr, func(p pup.Pupable) { want, err = pup.Pack(p) })
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ck.Bytes(), want) {
		t.Fatal("post-restart capture differs from a fresh pack")
	}
}

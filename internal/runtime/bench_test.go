package runtime

import (
	"testing"

	"acr/internal/pup"
)

// BenchmarkMessageRoundTrip measures the runtime's raw send/recv path: two
// tasks ping-pong b.N times.
func BenchmarkMessageRoundTrip(b *testing.B) {
	done := make(chan struct{})
	factory := func(addr Addr) Program {
		return progFunc{pup: func(*pup.PUPer) {}, run: func(ctx *Ctx) error {
			if ctx.Addr().Replica != 0 {
				return nil // bench only replica 0
			}
			other := Addr{0, 0, 1 - ctx.Addr().Task}
			if ctx.Addr().Task == 0 {
				for i := 0; i < b.N; i++ {
					if err := ctx.Send(other, 1, int64(i)); err != nil {
						return err
					}
					if _, err := ctx.Recv(); err != nil {
						return err
					}
				}
				close(done)
				return nil
			}
			for i := 0; i < b.N; i++ {
				if _, err := ctx.Recv(); err != nil {
					return err
				}
				if err := ctx.Send(other, 1, int64(i)); err != nil {
					return err
				}
			}
			return nil
		}}
	}
	m, err := NewMachine(Config{NodesPerReplica: 1, TasksPerNode: 2, Factory: factory})
	if err != nil {
		b.Fatal(err)
	}
	defer m.Stop()
	b.ResetTimer()
	m.Start()
	<-done
}

// BenchmarkPackTask measures checkpoint capture of a modest task state.
func BenchmarkPackTask(b *testing.B) {
	m, err := NewMachine(Config{
		NodesPerReplica: 1,
		TasksPerNode:    1,
		Factory:         ringFactory(1),
	})
	if err != nil {
		b.Fatal(err)
	}
	defer m.Stop()
	m.Start()
	if err := m.Wait(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.PackTask(Addr{0, 0, 0}); err != nil {
			b.Fatal(err)
		}
	}
}

package runtime

import "testing"

// TestFoldTieBreakDeterministic pins FoldOntoSurvivor's tie-break to the
// lowest PHYSICAL node id. The route is first scrambled by a spare
// replacement so that logical-index order disagrees with physical-id order:
// after logical node 0 moves to the spare (physical 6), a load tie between
// logical 0 (phys 6) and logical 2 (phys 2) must fold onto phys 2, even
// though logical 0 is scanned first.
func TestFoldTieBreakDeterministic(t *testing.T) {
	m := newTestMachine(t, Config{
		NodesPerReplica: 3,
		TasksPerNode:    1,
		Spares:          1,
		Factory:         ringFactory(1),
	})

	m.Kill(0, 0)
	if err := m.ReplaceWithSpare(0, 0); err != nil {
		t.Fatal(err)
	}
	if got := m.route[0][0]; got != 6 {
		t.Fatalf("after replacement logical 0 on phys %d, want 6", got)
	}

	m.Kill(0, 1)
	survivor, err := m.FoldOntoSurvivor(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Both survivors carry load 1; the tie must break to phys 2 (logical 2),
	// not phys 6 (logical 0) which the scan visits first.
	if survivor != 2 {
		t.Fatalf("fold chose logical survivor %d, want 2", survivor)
	}
	if got := m.route[0][1]; got != 2 {
		t.Fatalf("folded node routed to phys %d, want 2", got)
	}
	if got := m.FoldedCount(); got != 1 {
		t.Fatalf("FoldedCount = %d, want 1", got)
	}
}

// TestTakeSpare covers the fleet preemption primitive: the newest spare is
// withdrawn, FIFO consumption order for ReplaceWithSpare is untouched, and
// an empty pool reports ok=false.
func TestTakeSpare(t *testing.T) {
	m := newTestMachine(t, Config{
		NodesPerReplica: 2,
		TasksPerNode:    1,
		Spares:          2,
		Factory:         ringFactory(1),
	})

	// Spares are phys 4 and 5; TakeSpare withdraws the newest (5).
	id, ok := m.TakeSpare()
	if !ok || id != 5 {
		t.Fatalf("TakeSpare = (%d, %v), want (5, true)", id, ok)
	}
	if got := m.SpareCount(); got != 1 {
		t.Fatalf("SpareCount = %d, want 1", got)
	}

	// The oldest spare (4) is still first in line for replacement.
	m.Kill(0, 0)
	if err := m.ReplaceWithSpare(0, 0); err != nil {
		t.Fatal(err)
	}
	if got := m.route[0][0]; got != 4 {
		t.Fatalf("replacement used phys %d, want 4", got)
	}

	if id, ok := m.TakeSpare(); ok {
		t.Fatalf("TakeSpare on empty pool = (%d, true), want ok=false", id)
	}
}

package runtime

import (
	"bytes"
	"testing"

	"acr/internal/ckptstore"
	"acr/internal/pup"
)

// trackedVecProg is a minimal write-tracking program: a flat float vector
// plus an iteration counter. Run completes immediately (the tests drive
// state mutation through CorruptTask at quiescence), which keeps every
// capture deterministic.
type trackedVecProg struct {
	pup.WriteSet
	Iter int
	Vals []float64
}

func (g *trackedVecProg) Pup(p *pup.PUPer) {
	p.Label("iter")
	p.Int(&g.Iter)
	p.Label("vals")
	p.Float64s(&g.Vals)
}

func (g *trackedVecProg) Run(ctx *Ctx) error { return nil }

func trackedVecFactory(n int) Factory {
	return func(addr Addr) Program {
		g := &trackedVecProg{Vals: make([]float64, n)}
		for i := range g.Vals {
			g.Vals[i] = float64(i)
		}
		return g
	}
}

// TestCaptureReplicaDirtySplice drives the full incremental path: first
// capture full (blind tracker), second capture after a single marked
// element write must splice clean chunks and clean bytes, and the stored
// payload must stay byte-identical to a from-scratch pack. A restore then
// blinds the tracker again.
func TestCaptureReplicaDirtySplice(t *testing.T) {
	const nVals = 256 // 8-byte elements -> 2 KiB of bulk data
	const chunkSize = 256
	m := newTestMachine(t, Config{
		NodesPerReplica: 1,
		TasksPerNode:    1,
		Factory:         trackedVecFactory(nVals),
	})
	m.Start()
	if err := m.Wait(); err != nil {
		t.Fatal(err)
	}
	st := ckptstore.NewMem()
	opts := CaptureOptions{ChunkSize: chunkSize, Workers: 1, ChunkWorkers: 1}
	addr := Addr{Replica: 0, Node: 0, Task: 0}

	if err := m.CaptureReplica(0, 1, st, opts); err != nil {
		t.Fatal(err)
	}
	if packed, reused, bytesReused := m.DirtyCounters(); packed != 0 || reused != 0 || bytesReused != 0 {
		t.Fatalf("first capture must be blind/full, got dirty counters %d/%d/%d", packed, reused, bytesReused)
	}

	// One element write, honestly marked.
	var spans map[string]pup.Range
	m.CorruptTask(addr, func(p pup.Pupable) {
		g := p.(*trackedVecProg)
		spans = pup.FieldSpans(g)
		g.Vals[10] = -123.5
		g.Iter++
		g.MarkSpan(spans["vals"].Slice(10, 11, 8))
		g.MarkSpan(spans["iter"])
	})
	if err := m.CaptureReplica(0, 2, st, opts); err != nil {
		t.Fatal(err)
	}
	packed, reused, bytesReused := m.DirtyCounters()
	if reused == 0 || bytesReused == 0 {
		t.Fatalf("tracked capture spliced nothing: packed=%d reused=%d bytesReused=%d", packed, reused, bytesReused)
	}
	if packed > 2 {
		t.Fatalf("single-element write recomputed %d chunks, want <= 2", packed)
	}

	// The stored payload must equal a from-scratch pack of the live state.
	ck, err := st.Get(ckptstore.Key{Replica: 0, Node: 0, Task: 0, Epoch: 2})
	if err != nil {
		t.Fatal(err)
	}
	var want []byte
	m.CorruptTask(addr, func(p pup.Pupable) {
		want, err = pup.Pack(p)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ck.Bytes(), want) {
		t.Fatal("spliced capture payload differs from a fresh pack")
	}
	// And its checksums must match a from-scratch capture of the payload.
	fresh := ckptstore.Capture(append([]byte(nil), want...), chunkSize, 1)
	if fresh.Root != ck.Root {
		t.Fatalf("spliced root %x != fresh root %x", ck.Root, fresh.Root)
	}

	// Round-trip: restore from the spliced capture and re-capture; the
	// fresh incarnation is blind, so the dirty counters must not move.
	m.StopReplica(0)
	if err := m.RestartReplicaFromStore(0, 2, st); err != nil {
		t.Fatal(err)
	}
	if err := m.Wait(); err != nil {
		t.Fatal(err)
	}
	if err := m.CaptureReplica(0, 3, st, opts); err != nil {
		t.Fatal(err)
	}
	if p2, r2, b2 := m.DirtyCounters(); p2 != packed || r2 != reused || b2 != bytesReused {
		t.Fatalf("post-restore capture moved dirty counters: %d/%d/%d -> %d/%d/%d",
			packed, reused, bytesReused, p2, r2, b2)
	}
	ck3, err := st.Get(ckptstore.Key{Replica: 0, Node: 0, Task: 0, Epoch: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ck3.Bytes(), want) {
		t.Fatal("restored state did not round-trip byte-identically")
	}
}

// TestRestartResetsSizeHint is the recovery regression test: a task
// restored from an older, larger epoch must take its size hint from the
// restored payload, not keep the pre-failure hint (which would force the
// first post-recovery capture through the overflow slow path). The splice
// base must be dropped too.
func TestRestartResetsSizeHint(t *testing.T) {
	m := newTestMachine(t, Config{
		NodesPerReplica: 1,
		TasksPerNode:    1,
		Factory:         trackedVecFactory(64),
	})
	m.Start()
	if err := m.Wait(); err != nil {
		t.Fatal(err)
	}
	st := ckptstore.NewMem()
	opts := CaptureOptions{ChunkSize: 256, Workers: 1, ChunkWorkers: 1}
	addr := Addr{Replica: 0, Node: 0, Task: 0}

	// Epoch 1: the large state.
	if err := m.CaptureReplica(0, 1, st, opts); err != nil {
		t.Fatal(err)
	}
	big, err := st.Get(ckptstore.Key{Replica: 0, Node: 0, Task: 0, Epoch: 1})
	if err != nil {
		t.Fatal(err)
	}
	// The state shrinks; epoch 2's capture leaves a small hint behind.
	m.CorruptTask(addr, func(p pup.Pupable) {
		g := p.(*trackedVecProg)
		g.Vals = g.Vals[:8]
	})
	if err := m.CaptureReplica(0, 2, st, opts); err != nil {
		t.Fatal(err)
	}
	if hint := m.sizeHint(addr); hint >= big.Len() {
		t.Fatalf("precondition: post-shrink hint %d should be smaller than the old payload %d", hint, big.Len())
	}

	// Recovery escalates to the older epoch 1 (ladder tier behavior).
	m.StopReplica(0)
	if err := m.RestartReplicaFromStore(0, 1, st); err != nil {
		t.Fatal(err)
	}
	if hint := m.sizeHint(addr); hint != big.Len() {
		t.Fatalf("restored hint = %d, want restored payload length %d", hint, big.Len())
	}
	m.mu.RLock()
	s := m.slots[0][0][0]
	m.mu.RUnlock()
	s.mu.Lock()
	lastCap := s.lastCap
	s.mu.Unlock()
	if lastCap != nil {
		t.Fatal("restart must drop the splice base")
	}
	if err := m.Wait(); err != nil {
		t.Fatal(err)
	}

	// The first post-recovery capture must take the single-pass fast path.
	fastBefore, slowBefore := m.PackCounters()
	if err := m.CaptureReplica(0, 3, st, opts); err != nil {
		t.Fatal(err)
	}
	fastAfter, slowAfter := m.PackCounters()
	if fastAfter != fastBefore+1 || slowAfter != slowBefore {
		t.Fatalf("post-recovery capture took the slow path (fast %d->%d, slow %d->%d)",
			fastBefore, fastAfter, slowBefore, slowAfter)
	}
}

package runtime

import (
	"encoding/binary"
	"math"
	"sync"

	"acr/internal/checksum"
)

// Message-based SDC detection — the §3.3 alternative ACR argues against.
// Every send is hashed, and each task's outgoing message stream folds into
// a position-dependent running checksum. Because the two replicas execute
// the same program, the stream checksum of task (n, t) in replica 0 must
// equal that of task (n, t) in replica 1 after the same number of sends;
// a divergence means corrupted data escaped into a message.
//
// The paper's criticism, which this implementation makes testable: "if the
// data effected by SDC remains local, it will not be detected" — a bit
// flip in state that is never sent leaves both streams identical.

// MessageHasher converts a message payload into a hashable byte string.
// Returning ok=false skips the message (unhashable payloads are not
// folded on either replica, so streams stay comparable).
type MessageHasher func(data any) (sum uint64, ok bool)

// DefaultMessageHasher hashes the payload types the mini-apps use:
// float64, int64, int, and []float64.
func DefaultMessageHasher(data any) (uint64, bool) {
	var f checksum.Fletcher64Writer
	var buf [8]byte
	switch v := data.(type) {
	case float64:
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		f.Write(buf[:])
	case int64:
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		f.Write(buf[:])
	case int:
		binary.LittleEndian.PutUint64(buf[:], uint64(int64(v)))
		f.Write(buf[:])
	case []float64:
		for _, x := range v {
			binary.LittleEndian.PutUint64(buf[:], math.Float64bits(x))
			f.Write(buf[:])
		}
	default:
		return 0, false
	}
	return f.Sum64(), true
}

// msgStream is one task's outgoing-message checksum chain.
type msgStream struct {
	count int
	chain uint64
}

// MsgChecker accumulates per-task message streams for both replicas and
// compares buddies. It is optional: install it via Config.MsgChecker.
type MsgChecker struct {
	hasher MessageHasher

	mu      sync.Mutex
	streams map[Addr]*msgStream
}

// NewMsgChecker returns a checker using the given hasher (nil means
// DefaultMessageHasher).
func NewMsgChecker(h MessageHasher) *MsgChecker {
	if h == nil {
		h = DefaultMessageHasher
	}
	return &MsgChecker{hasher: h, streams: make(map[Addr]*msgStream)}
}

// observe folds one outgoing message into the sender's stream.
func (mc *MsgChecker) observe(from Addr, tag int, data any) {
	h, ok := mc.hasher(data)
	if !ok {
		return
	}
	mc.mu.Lock()
	s := mc.streams[from]
	if s == nil {
		s = &msgStream{}
		mc.streams[from] = s
	}
	s.count++
	// Position-dependent fold: chain' = fletcher(chain || count || tag || h).
	var f checksum.Fletcher64Writer
	var buf [32]byte
	binary.LittleEndian.PutUint64(buf[0:], s.chain)
	binary.LittleEndian.PutUint64(buf[8:], uint64(s.count))
	binary.LittleEndian.PutUint64(buf[16:], uint64(int64(tag)))
	binary.LittleEndian.PutUint64(buf[24:], h)
	f.Write(buf[:])
	s.chain = f.Sum64()
	mc.mu.Unlock()
}

// Divergence describes one buddy pair whose message streams differ.
type Divergence struct {
	Node, Task int
	Count0     int // messages folded in replica 0's stream
	Count1     int
}

// Compare cross-checks every buddy pair's stream at the shorter prefix
// length. Streams of different lengths are only divergent if the common
// prefix already differs — replicas legitimately run at different speeds,
// so a pure length difference is not corruption. Because the fold is a
// chain, prefix comparison requires equal counts; pairs with unequal
// counts are reported only when both have finished the same work (the
// caller decides when that holds, e.g. at a checkpoint cut).
func (mc *MsgChecker) Compare(nodesPerReplica, tasksPerNode int, requireEqualCounts bool) []Divergence {
	mc.mu.Lock()
	defer mc.mu.Unlock()
	var out []Divergence
	for n := 0; n < nodesPerReplica; n++ {
		for t := 0; t < tasksPerNode; t++ {
			s0 := mc.streams[Addr{Replica: 0, Node: n, Task: t}]
			s1 := mc.streams[Addr{Replica: 1, Node: n, Task: t}]
			if s0 == nil && s1 == nil {
				continue
			}
			c0, c1 := 0, 0
			var h0, h1 uint64
			if s0 != nil {
				c0, h0 = s0.count, s0.chain
			}
			if s1 != nil {
				c1, h1 = s1.count, s1.chain
			}
			if c0 == c1 {
				if h0 != h1 {
					out = append(out, Divergence{Node: n, Task: t, Count0: c0, Count1: c1})
				}
			} else if requireEqualCounts {
				out = append(out, Divergence{Node: n, Task: t, Count0: c0, Count1: c1})
			}
		}
	}
	return out
}

// Reset clears the streams of one replica (call on rollback: the replica
// will re-send from the checkpoint, so its stream restarts).
func (mc *MsgChecker) Reset(rep int) {
	mc.mu.Lock()
	defer mc.mu.Unlock()
	for a := range mc.streams {
		if a.Replica == rep {
			delete(mc.streams, a)
		}
	}
}

// ResetAll clears every stream.
func (mc *MsgChecker) ResetAll() {
	mc.mu.Lock()
	defer mc.mu.Unlock()
	mc.streams = make(map[Addr]*msgStream)
}

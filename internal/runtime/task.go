package runtime

import (
	"fmt"
	"time"

	"acr/internal/chaos/point"
	"acr/internal/ckptstore"
	"acr/internal/pup"
)

// Ctx is the execution context handed to a Program's Run method. A Ctx is
// bound to one incarnation of one task: after a rollback or node
// replacement a fresh Ctx is created for the new incarnation.
type Ctx struct {
	m    *Machine
	slot *taskSlot
	addr Addr

	// Incarnation-scoped snapshot.
	mbox  chan Message
	abort chan struct{}
	epoch uint64
}

// Addr returns the task's logical address.
func (c *Ctx) Addr() Addr { return c.addr }

// NumNodes returns the logical node count of the replica.
func (c *Ctx) NumNodes() int { return c.m.cfg.NodesPerReplica }

// TasksPerNode returns the task count per node.
func (c *Ctx) TasksPerNode() int { return c.m.cfg.TasksPerNode }

// NumTasks returns the total task count of the replica.
func (c *Ctx) NumTasks() int { return c.m.cfg.NodesPerReplica * c.m.cfg.TasksPerNode }

// GlobalTask returns the task's dense index within its replica:
// node*TasksPerNode + task.
func (c *Ctx) GlobalTask() int { return c.addr.Node*c.m.cfg.TasksPerNode + c.addr.Task }

// AddrOfGlobal returns the logical address of a dense task index within the
// same replica.
func (c *Ctx) AddrOfGlobal(g int) Addr {
	return Addr{Replica: c.addr.Replica, Node: g / c.m.cfg.TasksPerNode, Task: g % c.m.cfg.TasksPerNode}
}

// checkLive returns the error that should interrupt this incarnation, if
// any: node death, rollback, or machine stop.
func (c *Ctx) checkLive() error {
	c.m.mu.RLock()
	p := c.m.physFor(c.addr.Replica, c.addr.Node)
	s := c.m.slots[c.addr.Replica][c.addr.Node][c.addr.Task]
	m := c.m
	c.m.mu.RUnlock()
	s.mu.Lock()
	moved := s.mbox != c.mbox
	s.mu.Unlock()
	select {
	case <-m.stopped:
		return ErrStopped
	default:
	}
	select {
	case <-c.abort:
		return ErrRollback
	default:
	}
	if !p.alive() || moved {
		return ErrKilled
	}
	return nil
}

// Send delivers an asynchronous message to another task in the same
// replica. Messages to dead nodes vanish (fail-stop); the data value is
// shared by reference, so senders must not mutate it afterwards. Send only
// returns an error when the *sender* can no longer run.
func (c *Ctx) Send(to Addr, tag int, data any) error {
	if to.Replica != c.addr.Replica {
		return fmt.Errorf("runtime: cross-replica application sends are not allowed (%v -> %v)", c.addr, to)
	}
	if err := c.checkLive(); err != nil {
		return err
	}
	if h := c.m.cfg.Chaos; h != nil {
		// Fire outside the machine lock: hooks may take machine-level
		// actions (kill a node) that re-enter the lock. The hook may
		// replace the payload — a bit flip in flight (§6.1 applied to the
		// message path instead of checkpoint data).
		info := point.Info{Replica: to.Replica, Node: to.Node, Task: to.Task, Payload: data}
		h.Fire(point.RuntimeDeliver, &info)
		data = info.Payload
	}
	c.m.mu.RLock()
	defer c.m.mu.RUnlock()
	if to.Node < 0 || to.Node >= c.m.cfg.NodesPerReplica || to.Task < 0 || to.Task >= c.m.cfg.TasksPerNode {
		return fmt.Errorf("runtime: send to invalid address %v", to)
	}
	// Stale incarnation? Drop output from the walking dead.
	if c.m.epoch[c.addr.Replica] != c.epoch {
		return ErrRollback
	}
	if mc := c.m.cfg.MsgChecker; mc != nil {
		// Fold at the send side, like the message-comparison schemes of
		// §3.3: corruption is observable the moment it leaves the task.
		mc.observe(c.addr, tag, data)
	}
	if !c.m.physFor(to.Replica, to.Node).alive() {
		return nil // silently lost, like a message into a crashed node
	}
	dst := c.m.slots[to.Replica][to.Node][to.Task]
	dst.mu.Lock()
	mbox := dst.mbox
	dst.mu.Unlock()
	if mbox == nil {
		return nil
	}
	msg := Message{From: c.addr, Tag: tag, Data: data, epoch: c.epoch}
	select {
	case mbox <- msg:
		return nil
	default:
		// A full mailbox means the application violated the bounded
		// outstanding-message discipline; surface it loudly.
		return fmt.Errorf("runtime: mailbox overflow at %v (cap %d)", to, c.m.cfg.MailboxCap)
	}
}

// Recv blocks for the next message from any source. It returns ErrKilled /
// ErrRollback / ErrStopped when the incarnation must end.
func (c *Ctx) Recv() (Message, error) {
	c.m.mu.RLock()
	p := c.m.physFor(c.addr.Replica, c.addr.Node)
	c.m.mu.RUnlock()
	for {
		select {
		case msg := <-c.mbox:
			if msg.epoch != c.epoch {
				continue // stale epoch: discard
			}
			return msg, nil
		case <-p.dead:
			return Message{}, ErrKilled
		case <-c.abort:
			return Message{}, ErrRollback
		case <-c.m.stopped:
			return Message{}, ErrStopped
		}
	}
}

// Progress reports that the task finished iteration iter and yields to the
// gate, blocking while the checkpoint protocol holds the task (§2.2). It
// returns ErrKilled / ErrRollback / ErrStopped when the incarnation must
// end instead of continuing.
//
// Contract: the task must advance its pup-visible state to the next
// iteration BEFORE calling Progress, so that a checkpoint captured while it
// is parked here resumes with the next iteration rather than redoing the
// reported one.
func (c *Ctx) Progress(iter int) error {
	if err := c.checkLive(); err != nil {
		return err
	}
	if h := c.m.cfg.Chaos; h != nil {
		h.Fire(point.RuntimeProgress, &point.Info{Replica: c.addr.Replica, Node: c.addr.Node, Task: c.addr.Task, Iter: iter})
	}
	waitCh := c.m.cfg.Gate.Report(c.addr, iter)
	if waitCh == nil {
		return nil
	}
	c.m.mu.RLock()
	p := c.m.physFor(c.addr.Replica, c.addr.Node)
	c.m.mu.RUnlock()
	select {
	case <-waitCh:
		return c.checkLive()
	case <-p.dead:
		return ErrKilled
	case <-c.abort:
		return ErrRollback
	case <-c.m.stopped:
		return ErrStopped
	}
}

// startSlotLocked launches a fresh incarnation of the slot's task. The
// machine mutex must be held.
func (m *Machine) startSlotLocked(s *taskSlot) {
	s.mu.Lock()
	s.mbox = make(chan Message, m.cfg.MailboxCap)
	s.abort = make(chan struct{})
	s.running = true
	s.completed = false
	s.gen++
	ctx := &Ctx{
		m:     m,
		slot:  s,
		addr:  s.addr,
		mbox:  s.mbox,
		abort: s.abort,
		epoch: m.epoch[s.addr.Replica],
	}
	prog := s.prog
	s.mu.Unlock()

	m.wg.Add(1)
	go func() {
		defer m.wg.Done()
		err := prog.Run(ctx)
		s.mu.Lock()
		if s.mbox == ctx.mbox { // still the current incarnation
			s.running = false
			if err == nil {
				s.completed = true
			}
		}
		s.mu.Unlock()
		switch err {
		case nil:
			m.cfg.Gate.Done(s.addr)
			m.recordCompletion()
		case ErrKilled, ErrRollback, ErrStopped:
			// Expected terminations; the controller owns recovery.
		default:
			m.recordAppError(fmt.Errorf("task %v: %w", s.addr, err))
		}
	}()
}

// PackTask serializes the current state of a task. The caller must
// guarantee the task is quiescent: parked in Progress by the gate,
// completed, or its replica stopped. This is the "local checkpoint" of
// §2.1.
func (m *Machine) PackTask(addr Addr) ([]byte, error) {
	m.mu.RLock()
	s := m.slots[addr.Replica][addr.Node][addr.Task]
	m.mu.RUnlock()
	s.mu.Lock()
	prog := s.prog
	s.mu.Unlock()
	return pup.Pack(prog)
}

// captureTaskInto packs a task's state and chunks/checksums it into a
// checkpoint, routing through the incremental dirty path when possible:
// if the program tracks writes (pup.DirtyTracker, armed) and the slot
// retains the previous epoch's capture, only dirty elements are re-encoded
// and only dirty chunks re-checksummed (clean sums spliced from the
// previous capture). When the caller additionally enables patch capture
// and the slot still holds its two-epochs-ago buffer, clean bytes are not
// even copied — the old buffer is patched in place with the union of the
// last two dirty sets (pup.PackDirtyPatch); otherwise clean bytes are
// memcpy'd from the previous stream (pup.PackDirtyInto). Untracked or
// blind programs, fresh incarnations, and structural changes all degrade
// to the ordinary full pack — correctness never depends on tracking.
// Quiescence rules match PackTask.
//
// The resulting checkpoint is retained as the slot's next splice base, the
// slot's size hint is refreshed, and the tracker (if any) is re-armed.
func (m *Machine) captureTaskInto(addr Addr, recycled *ckptstore.Checkpoint, buf []byte, hint, chunkSize, chunkWorkers int, patch bool) (*ckptstore.Checkpoint, error) {
	m.mu.RLock()
	s := m.slots[addr.Replica][addr.Node][addr.Task]
	m.mu.RUnlock()
	s.mu.Lock()
	prog := s.prog
	prev := s.lastCap
	scratch := s.dirtyScratch
	base := s.patchCap
	stale := s.patchDirty
	union := s.patchScratch
	s.mu.Unlock()

	if recycled != nil && recycled == prev {
		// The pool handed back the very checkpoint we would splice from
		// (possible only if a caller evicted the epoch the slot still
		// trusts); packing into its buffer while reading it would corrupt
		// both. Fall back to a full pack.
		prev = nil
	}
	var prevBytes []byte
	var dirty []pup.Range
	tracker, _ := prog.(pup.DirtyTracker)
	tracked := false
	if tracker != nil && prev != nil {
		if rs, ok := tracker.DirtyRanges(scratch); ok {
			dirty, tracked = rs, true
			prevBytes = prev.Bytes()
		}
	}

	var res pup.DirtyPackResult
	var err error
	patched := false
	if tracked && patch && base != nil && base != prev && base.Len() == prev.Len() {
		// Patch in place: base still holds the stream from two captures
		// ago, which differs from prev only on stale (the previous
		// capture's dirty set). Re-encoding stale ∪ dirty on top of it
		// yields the current stream without touching a single clean byte.
		// base left the store when the previous epoch committed, and its
		// Retained flag kept the pool from handing it to anyone else.
		union = append(union[:0], dirty...)
		union = append(union, stale...)
		res, err = pup.PackDirtyPatch(prog, base.Scratch(), prevBytes, dirty, union)
		patched = true
	} else {
		if cap(buf) == 0 && hint > 0 {
			// No pool, or a drained pool handing back an empty struct
			// (nothing evicted yet, or every retiree retained by the patch
			// ladder): seed the buffer from the size hint so single-pass
			// packing and the dirty splice still engage. Allocated here,
			// not in CaptureReplica — the patch path above never touches
			// buf, and eagerly making a state-sized buffer per capture
			// would spend more time zeroing it than the patch spends
			// packing.
			buf = make([]byte, 0, hint)
		}
		res, err = pup.PackDirtyInto(prog, buf, prevBytes, dirty)
	}
	if err != nil {
		return nil, err
	}
	if res.Fast {
		m.packFast.Add(1)
	} else {
		m.packSlow.Add(1)
	}
	// The capture target: the patch path writes into base's buffer, so the
	// checkpoint must reuse base's struct and Sums (recycled, if the pool
	// supplied one, is simply left for the collector — with patching active
	// the slot self-recycles and the pool drains to empty structs anyway).
	into := recycled
	if patched {
		into = base
	}
	var ck *ckptstore.Checkpoint
	if res.Spliced {
		var reusedChunks int
		ck, reusedChunks = ckptstore.CaptureDirtyInto(into, res.Data, chunkSize, chunkWorkers, prev, res.Dirty)
		m.dirtyChunksReused.Add(int64(reusedChunks))
		m.dirtyChunksPacked.Add(int64(ck.NumChunks() - reusedChunks))
		m.dirtyBytesReused.Add(int64(res.Reused))
	} else {
		ck = ckptstore.CaptureInto(into, res.Data, chunkSize, chunkWorkers)
		if tracked {
			// A tracked capture that could not splice still counts its
			// chunks as packed, so the dirty ratio reflects rebases.
			m.dirtyChunksPacked.Add(int64(ck.NumChunks()))
		}
	}

	keep := dirty
	if res.Spliced {
		keep = res.Dirty
	}
	s.mu.Lock()
	s.sizeHint = len(res.Data)
	s.lastCap = ck
	if keep != nil && cap(keep) > cap(s.dirtyScratch) {
		s.dirtyScratch = keep[:0]
	}
	if union != nil {
		s.patchScratch = union[:0]
	}
	if patch && tracked && res.Spliced && prev != nil {
		// prev becomes the patch base for the NEXT capture: by then the
		// commit protocol will have evicted it from the store, and the
		// Retained flag keeps the pool from recycling its buffer into
		// another task's capture in the meantime. patchDirty records
		// exactly how the new capture differs from it.
		prev.SetRetained(true)
		s.patchCap = prev
		s.patchDirty = append(s.patchDirty[:0], res.Dirty...)
	} else {
		// Without a spliced capture there is no trustworthy delta between
		// this stream and the previous one, so patching two epochs ahead
		// would splice stale bytes. Start the ladder over.
		s.patchCap = nil
		s.patchDirty = s.patchDirty[:0]
	}
	s.mu.Unlock()
	if tracker != nil {
		// The task is quiescent for the duration of the capture, so
		// re-arming the tracker here cannot race application marks.
		tracker.ResetDirty()
	}
	return ck, nil
}

// sizeHint returns the task's packed size at its last capture (0 before
// the first one).
func (m *Machine) sizeHint(addr Addr) int {
	m.mu.RLock()
	s := m.slots[addr.Replica][addr.Node][addr.Task]
	m.mu.RUnlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sizeHint
}

// CheckTask compares the live state of a task against a packed remote
// checkpoint using the checker PUPer (§4.1). Quiescence rules match
// PackTask.
func (m *Machine) CheckTask(addr Addr, remote []byte, relTol float64) (pup.CheckResult, error) {
	m.mu.RLock()
	s := m.slots[addr.Replica][addr.Node][addr.Task]
	m.mu.RUnlock()
	s.mu.Lock()
	prog := s.prog
	s.mu.Unlock()
	return pup.Check(prog, remote, relTol)
}

// TaskCompleted reports whether the task's current incarnation ran to
// completion.
func (m *Machine) TaskCompleted(addr Addr) bool {
	m.mu.RLock()
	s := m.slots[addr.Replica][addr.Node][addr.Task]
	m.mu.RUnlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.completed
}

// CorruptTask exposes the live program state of a task to an injector
// function — the SDC injection hook (§6.1: flip a bit "in the user data
// that will be checkpointed"). The same quiescence rules as PackTask apply
// if inject mutates state; tests may also call it on running tasks whose
// programs tolerate racy corruption.
func (m *Machine) CorruptTask(addr Addr, inject func(pup.Pupable)) {
	m.mu.RLock()
	s := m.slots[addr.Replica][addr.Node][addr.Task]
	m.mu.RUnlock()
	s.mu.Lock()
	prog := s.prog
	s.mu.Unlock()
	inject(prog)
}

// StopReplica forces every task incarnation of the replica to exit and
// waits until they have. The replica's epoch advances, so any in-flight
// message from the old incarnations is discarded on receipt.
func (m *Machine) StopReplica(rep int) {
	m.mu.Lock()
	m.epoch[rep]++
	var aborts []chan struct{}
	var completedNow int
	for n := 0; n < m.cfg.NodesPerReplica; n++ {
		for t := 0; t < m.cfg.TasksPerNode; t++ {
			s := m.slots[rep][n][t]
			s.mu.Lock()
			if s.running {
				aborts = append(aborts, s.abort)
			}
			if s.completed {
				completedNow++
			}
			s.mu.Unlock()
		}
	}
	// Tasks that had completed are about to be rolled back; they no
	// longer count as completed. Re-arm the done channel if it had fired.
	m.completed -= completedNow
	if completedNow > 0 && m.doneClosed {
		m.doneCh = make(chan struct{})
		m.doneClosed = false
	}
	m.mu.Unlock()
	for _, a := range aborts {
		close(a)
	}
	// Wait for the incarnations to drain.
	m.waitQuiescent(rep)
}

// waitQuiescent blocks until no task goroutine of the replica is running.
func (m *Machine) waitQuiescent(rep int) {
	for {
		busy := false
		m.mu.RLock()
		for n := 0; n < m.cfg.NodesPerReplica && !busy; n++ {
			for t := 0; t < m.cfg.TasksPerNode && !busy; t++ {
				s := m.slots[rep][n][t]
				s.mu.Lock()
				busy = s.running
				s.mu.Unlock()
			}
		}
		m.mu.RUnlock()
		if !busy {
			return
		}
		// Busy-wait with a yield: stops are rare, short events.
		sleepYield()
	}
}

// RestartReplica restores every task of the replica from the supplied
// checkpoints (indexed [node][task]) and launches fresh incarnations. The
// replica must be quiescent (StopReplica). Passing a nil checkpoint for a
// task restarts it from factory state.
func (m *Machine) RestartReplica(rep int, ckpts [][][]byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(ckpts) != m.cfg.NodesPerReplica {
		return fmt.Errorf("runtime: checkpoint set has %d nodes, want %d", len(ckpts), m.cfg.NodesPerReplica)
	}
	for n := 0; n < m.cfg.NodesPerReplica; n++ {
		if len(ckpts[n]) != m.cfg.TasksPerNode {
			return fmt.Errorf("runtime: node %d checkpoint set has %d tasks, want %d", n, len(ckpts[n]), m.cfg.TasksPerNode)
		}
	}
	for n := 0; n < m.cfg.NodesPerReplica; n++ {
		for t := 0; t < m.cfg.TasksPerNode; t++ {
			s := m.slots[rep][n][t]
			fresh := m.cfg.Factory(s.addr)
			if ck := ckpts[n][t]; ck != nil {
				if err := pup.Unpack(ck, fresh); err != nil {
					return fmt.Errorf("runtime: restore %v: %w", s.addr, err)
				}
			}
			s.mu.Lock()
			s.prog = fresh
			// The restored payload length is the task's true packed size:
			// a task restored from an older epoch (or folded onto a
			// survivor) must not keep its pre-failure hint, which would
			// push the first post-recovery capture through the overflow
			// slow path. The splice base is dropped for the same reason —
			// a fresh incarnation is blind until its next capture.
			s.sizeHint = len(ckpts[n][t])
			s.lastCap = nil
			s.patchCap = nil
			s.patchDirty = s.patchDirty[:0]
			s.mu.Unlock()
		}
	}
	for n := 0; n < m.cfg.NodesPerReplica; n++ {
		for t := 0; t < m.cfg.TasksPerNode; t++ {
			m.startSlotLocked(m.slots[rep][n][t])
		}
	}
	return nil
}

// sleepYield parks briefly; it is only used while waiting for rare stop
// events, so the fixed granularity is irrelevant.
func sleepYield() { time.Sleep(100 * time.Microsecond) }

package runtime

import (
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"acr/internal/pup"
)

// TestMailboxOverflowSurfaces: a sender that floods a never-receiving task
// must get a loud error (bounded-outstanding-messages discipline), not a
// silent drop or a deadlock.
func TestMailboxOverflowSurfaces(t *testing.T) {
	errCh := make(chan error, 1)
	factory := func(addr Addr) Program {
		return progFunc{pup: func(*pup.PUPer) {}, run: func(ctx *Ctx) error {
			if ctx.Addr().Task == 0 {
				// Task 0 floods task 1, which has already exited and
				// will never drain its mailbox.
				for i := 0; ; i++ {
					if err := ctx.Send(Addr{ctx.Addr().Replica, 0, 1}, 1, i); err != nil {
						if ctx.Addr().Replica == 0 {
							errCh <- err
						}
						return nil // swallow: the test inspects the error
					}
				}
			}
			return nil // task 1 completes immediately
		}}
	}
	m := newTestMachine(t, Config{
		NodesPerReplica: 1,
		TasksPerNode:    2,
		MailboxCap:      64,
		Factory:         factory,
	})
	m.Start()
	select {
	case err := <-errCh:
		if err == nil || !strings.Contains(err.Error(), "overflow") {
			t.Fatalf("expected overflow error, got %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("overflow never surfaced")
	}
}

// TestStaleEpochMessagesDropped: messages sent by a pre-rollback
// incarnation must never reach a post-rollback receiver.
func TestStaleEpochMessagesDropped(t *testing.T) {
	var received atomic.Int64
	factory := func(addr Addr) Program {
		return &epochProg{received: &received}
	}
	m := newTestMachine(t, Config{
		NodesPerReplica: 1,
		TasksPerNode:    2,
		Factory:         factory,
	})
	m.Start()
	// Let the flooder enqueue some messages for task 1, which sleeps.
	time.Sleep(10 * time.Millisecond)
	// Roll the replica back: mailboxes are recreated, epoch advances.
	m.StopReplica(0)
	received.Store(0)
	if err := m.RestartReplica(0, [][][]byte{{nil, nil}}); err != nil {
		t.Fatal(err)
	}
	if err := m.Wait(); err != nil {
		t.Fatal(err)
	}
	// The receiver counts only messages with the *current* epoch: it
	// needs exactly 5 from the new flooder; any stale delivery would
	// have produced a payload mismatch (fatal inside the program).
	if got := received.Load(); got != 5 {
		t.Fatalf("received %d messages, want 5", got)
	}
}

// epochProg: task 0 sends 5 tagged messages then exits; task 1 receives
// exactly 5 and verifies payloads are from its own epoch generation.
type epochProg struct {
	Done     bool
	received *atomic.Int64
}

func (e *epochProg) Pup(p *pup.PUPer) {
	p.Bool(&e.Done)
}

func (e *epochProg) Run(ctx *Ctx) error {
	if e.Done {
		return nil
	}
	if ctx.Addr().Task == 0 {
		for i := 0; i < 5; i++ {
			if err := ctx.Send(Addr{ctx.Addr().Replica, 0, 1}, 7, i); err != nil {
				return err
			}
		}
		e.Done = true
		return nil
	}
	for i := 0; i < 5; i++ {
		m, err := ctx.Recv()
		if err != nil {
			return err
		}
		if m.Tag != 7 {
			return errors.New("unexpected tag")
		}
		if ctx.Addr().Replica == 0 {
			e.received.Add(1)
		}
	}
	e.Done = true
	return nil
}

// TestKillWhileParked: killing a node whose tasks are parked in the gate
// must release them with ErrKilled, not leave them wedged.
func TestKillWhileParked(t *testing.T) {
	gate := newParkGate(2, 4) // park all 4 tasks (2 nodes x 1 task x 2 replicas)
	m := newTestMachine(t, Config{
		NodesPerReplica: 2,
		TasksPerNode:    1,
		Spares:          1,
		Factory:         ringFactory(100000),
		Gate:            gate,
	})
	m.Start()
	gate.waitAllParked(t)
	m.Kill(0, 1)
	// The killed node's task exits; the rest stay parked. Give it a
	// moment and verify no deadlock on release.
	time.Sleep(5 * time.Millisecond)
	gate.releaseAll()
	time.Sleep(5 * time.Millisecond)
	// Machine is still functional: replica 1 makes progress after release.
	if m.TaskCompleted(Addr{1, 0, 0}) {
		t.Fatal("endless ring cannot have completed")
	}
}

// TestPackFinishedTaskSurvivesRollbackCycles: repeated stop/restart cycles
// keep state capture coherent.
func TestRepeatedRollbackCycles(t *testing.T) {
	m := newTestMachine(t, Config{
		NodesPerReplica: 2,
		TasksPerNode:    2,
		Factory:         ringFactory(50),
	})
	m.Start()
	if err := m.Wait(); err != nil {
		t.Fatal(err)
	}
	want, err := m.PackTask(Addr{0, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	for cycle := 0; cycle < 5; cycle++ {
		m.StopReplica(0)
		if err := m.RestartReplica(0, [][][]byte{{nil, nil}, {nil, nil}}); err != nil {
			t.Fatal(err)
		}
		if err := m.Wait(); err != nil {
			t.Fatal(err)
		}
		got, err := m.PackTask(Addr{0, 0, 0})
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != string(want) {
			t.Fatalf("cycle %d: state diverged after rollback", cycle)
		}
	}
}

// TestDoneReflectsRollback: Machine.Done must flip back to false when a
// completed replica is rolled back.
func TestDoneReflectsRollback(t *testing.T) {
	m := newTestMachine(t, Config{
		NodesPerReplica: 1,
		TasksPerNode:    1,
		Factory:         ringFactory(3),
	})
	m.Start()
	if err := m.Wait(); err != nil {
		t.Fatal(err)
	}
	if !m.Done() {
		t.Fatal("Done should be true after completion")
	}
	m.StopReplica(0)
	if m.Done() {
		t.Fatal("Done should be false after rollback")
	}
	if err := m.RestartReplica(0, [][][]byte{{nil}}); err != nil {
		t.Fatal(err)
	}
	if err := m.Wait(); err != nil {
		t.Fatal(err)
	}
	if !m.Done() {
		t.Fatal("Done should be true after rerun")
	}
}

// TestSendAfterKillReturnsErrKilled: a killed node's own sends fail fast so
// its tasks terminate promptly.
func TestSendAfterKillReturnsErrKilled(t *testing.T) {
	errCh := make(chan error, 1)
	block := make(chan struct{})
	factory := func(addr Addr) Program {
		return progFunc{pup: func(*pup.PUPer) {}, run: func(ctx *Ctx) error {
			if ctx.Addr() != (Addr{0, 0, 0}) {
				<-block
				return nil
			}
			<-block // wait until killed
			errCh <- ctx.Send(Addr{0, 1, 0}, 1, nil)
			return nil
		}}
	}
	m := newTestMachine(t, Config{NodesPerReplica: 2, TasksPerNode: 1, Factory: factory})
	m.Start()
	m.Kill(0, 0)
	close(block)
	select {
	case err := <-errCh:
		if !errors.Is(err, ErrKilled) {
			t.Fatalf("send from killed node = %v, want ErrKilled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("send never returned")
	}
}

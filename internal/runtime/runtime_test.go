package runtime

import (
	"errors"
	"sync"
	"testing"
	"time"

	"acr/internal/pup"
)

// ringProg passes a token around the ring of all tasks in its replica for a
// fixed number of laps; every task accumulates the token values it saw.
// State is fully pup-able so it can checkpoint/restart.
type ringProg struct {
	Iter  int
	Laps  int
	Sum   int64
	Fault bool // when set, corrupt Sum before finishing (SDC stand-in)
}

func (r *ringProg) Pup(p *pup.PUPer) {
	p.Label("iter")
	p.Int(&r.Iter)
	p.Label("laps")
	p.Int(&r.Laps)
	p.Label("sum")
	p.Int64(&r.Sum)
	p.Label("fault")
	p.Bool(&r.Fault)
}

func (r *ringProg) Run(ctx *Ctx) error {
	n := ctx.NumTasks()
	me := ctx.GlobalTask()
	next := ctx.AddrOfGlobal((me + 1) % n)
	for r.Iter < r.Laps {
		// Everyone sends its id+iter to the next ring member, then
		// receives one message.
		if err := ctx.Send(next, 1, int64(me+r.Iter)); err != nil {
			return err
		}
		msg, err := ctx.Recv()
		if err != nil {
			return err
		}
		r.Sum += msg.Data.(int64)
		// Advance state BEFORE yielding: a checkpoint captured while
		// parked in Progress must resume with the next iteration.
		r.Iter++
		if err := ctx.Progress(r.Iter - 1); err != nil {
			return err
		}
	}
	return nil
}

func ringFactory(laps int) Factory {
	return func(addr Addr) Program { return &ringProg{Laps: laps} }
}

// ringSum is the expected per-task Sum after the full run: each task
// receives from its predecessor prev = (me-1+n) mod n the value prev+iter.
func ringSum(me, n, laps int) int64 {
	prev := (me - 1 + n) % n
	var sum int64
	for it := 0; it < laps; it++ {
		sum += int64(prev + it)
	}
	return sum
}

func newTestMachine(t *testing.T, cfg Config) *Machine {
	t.Helper()
	m, err := NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Stop)
	return m
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{},
		{NodesPerReplica: 1},
		{NodesPerReplica: 1, TasksPerNode: 1},
		{NodesPerReplica: 1, TasksPerNode: 1, Spares: -1, Factory: ringFactory(1)},
	}
	for i, cfg := range bad {
		if _, err := NewMachine(cfg); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestFailureFreeRun(t *testing.T) {
	m := newTestMachine(t, Config{
		NodesPerReplica: 4,
		TasksPerNode:    2,
		Factory:         ringFactory(10),
	})
	m.Start()
	if err := m.Wait(); err != nil {
		t.Fatal(err)
	}
	// Both replicas computed identical, correct sums.
	for rep := 0; rep < 2; rep++ {
		for n := 0; n < 4; n++ {
			for tk := 0; tk < 2; tk++ {
				addr := Addr{rep, n, tk}
				if !m.TaskCompleted(addr) {
					t.Fatalf("%v not completed", addr)
				}
				data, err := m.PackTask(addr)
				if err != nil {
					t.Fatal(err)
				}
				var got ringProg
				if err := pup.Unpack(data, &got); err != nil {
					t.Fatal(err)
				}
				want := ringSum(n*2+tk, 8, 10)
				if got.Sum != want {
					t.Fatalf("%v sum = %d, want %d", addr, got.Sum, want)
				}
			}
		}
	}
}

func TestReplicasIndependent(t *testing.T) {
	// A kill in replica 1 must not affect replica 0's completion.
	m := newTestMachine(t, Config{
		NodesPerReplica: 2,
		TasksPerNode:    1,
		Spares:          1,
		Factory:         ringFactory(2000),
	})
	m.Start()
	m.Kill(1, 0)
	// Replica 0 finishes; replica 1 never will. Wait for replica 0's
	// tasks by polling completion.
	deadline := time.Now().Add(5 * time.Second)
	for {
		done := m.TaskCompleted(Addr{0, 0, 0}) && m.TaskCompleted(Addr{0, 1, 0})
		if done {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("replica 0 did not finish despite replica 1 kill")
		}
		time.Sleep(time.Millisecond)
	}
	if m.TaskCompleted(Addr{1, 0, 0}) {
		t.Fatal("killed node's task reported completion")
	}
}

func TestKillStopsTasks(t *testing.T) {
	m := newTestMachine(t, Config{
		NodesPerReplica: 2,
		TasksPerNode:    2,
		Factory:         ringFactory(1000000), // effectively endless
	})
	m.Start()
	phys := m.Kill(0, 1)
	if phys < 0 {
		t.Fatal("bad phys id")
	}
	if m.Alive(0, 1) {
		t.Fatal("node still alive after kill")
	}
	if !m.Alive(0, 0) {
		t.Fatal("wrong node killed")
	}
	// The ring stalls; nobody completes; no app error either.
	time.Sleep(20 * time.Millisecond)
	if m.TaskCompleted(Addr{0, 0, 0}) {
		t.Fatal("task completed in stalled ring")
	}
}

func TestSpareReplacement(t *testing.T) {
	m := newTestMachine(t, Config{
		NodesPerReplica: 2,
		TasksPerNode:    1,
		Spares:          2,
		Factory:         ringFactory(5),
	})
	m.Start()
	if m.SpareCount() != 2 {
		t.Fatalf("spares = %d, want 2", m.SpareCount())
	}
	// Cannot replace a live node.
	if err := m.ReplaceWithSpare(0, 0); err == nil {
		t.Fatal("replacing a live node must fail")
	}
	m.Kill(0, 0)
	if err := m.ReplaceWithSpare(0, 0); err != nil {
		t.Fatal(err)
	}
	if m.SpareCount() != 1 {
		t.Fatalf("spares = %d, want 1", m.SpareCount())
	}
	if !m.Alive(0, 0) {
		t.Fatal("logical node should be alive on the spare")
	}
}

func TestSpareExhaustion(t *testing.T) {
	m := newTestMachine(t, Config{
		NodesPerReplica: 1,
		TasksPerNode:    1,
		Spares:          0,
		Factory:         ringFactory(1),
	})
	m.Start()
	m.Kill(0, 0)
	if err := m.ReplaceWithSpare(0, 0); err == nil {
		t.Fatal("empty spare pool must fail")
	}
}

func TestRollbackRestartsFromCheckpoint(t *testing.T) {
	// Run a gated ring, capture checkpoints at iteration 3, let it run,
	// then roll back and verify the final sums still come out right.
	gate := newParkGate(3, 8) // parks all 8 replica-0+1 tasks at iter 3
	m := newTestMachine(t, Config{
		NodesPerReplica: 2,
		TasksPerNode:    2,
		Factory:         ringFactory(10),
		Gate:            gate,
	})
	m.Start()
	gate.waitAllParked(t)

	// Capture replica 0's checkpoints while parked.
	ckpts := make([][][]byte, 2)
	for n := 0; n < 2; n++ {
		ckpts[n] = make([][]byte, 2)
		for tk := 0; tk < 2; tk++ {
			data, err := m.PackTask(Addr{0, n, tk})
			if err != nil {
				t.Fatal(err)
			}
			ckpts[n][tk] = data
			var snap ringProg
			if err := pup.Unpack(data, &snap); err != nil {
				t.Fatal(err)
			}
			// Parked after finishing iteration 3 with state already
			// advanced, so the packed cursor points at iteration 4.
			if snap.Iter != 4 {
				t.Fatalf("parked iter = %d, want 4", snap.Iter)
			}
		}
	}
	gate.releaseAll()
	if err := m.Wait(); err != nil {
		t.Fatal(err)
	}

	// Roll replica 0 back to iteration 3 and rerun to completion.
	m.StopReplica(0)
	if err := m.RestartReplica(0, ckpts); err != nil {
		t.Fatal(err)
	}
	if err := m.Wait(); err != nil {
		t.Fatal(err)
	}
	for n := 0; n < 2; n++ {
		for tk := 0; tk < 2; tk++ {
			data, err := m.PackTask(Addr{0, n, tk})
			if err != nil {
				t.Fatal(err)
			}
			var got ringProg
			if err := pup.Unpack(data, &got); err != nil {
				t.Fatal(err)
			}
			want := ringSum(n*2+tk, 4, 10)
			if got.Sum != want {
				t.Fatalf("task %d/%d sum after rollback = %d, want %d", n, tk, got.Sum, want)
			}
		}
	}
}

func TestRestartReplicaValidation(t *testing.T) {
	m := newTestMachine(t, Config{
		NodesPerReplica: 2,
		TasksPerNode:    1,
		Factory:         ringFactory(1),
	})
	m.Start()
	if err := m.Wait(); err != nil {
		t.Fatal(err)
	}
	m.StopReplica(0)
	if err := m.RestartReplica(0, make([][][]byte, 1)); err == nil {
		t.Fatal("wrong node count must fail")
	}
	bad := [][][]byte{{[]byte("junk")}, {nil}}
	if err := m.RestartReplica(0, bad); err == nil {
		t.Fatal("corrupt checkpoint must fail")
	}
	good := [][][]byte{{nil}, {nil}}
	if err := m.RestartReplica(0, good); err != nil {
		t.Fatal(err)
	}
	if err := m.Wait(); err != nil {
		t.Fatal(err)
	}
}

func TestHeartbeatDetection(t *testing.T) {
	m := newTestMachine(t, Config{
		NodesPerReplica:   2,
		TasksPerNode:      1,
		Spares:            1,
		Factory:           ringFactory(1 << 30),
		HeartbeatInterval: 2 * time.Millisecond,
		HeartbeatTimeout:  10 * time.Millisecond,
	})
	m.Start()
	time.Sleep(15 * time.Millisecond) // let heartbeats establish
	start := time.Now()
	m.Kill(1, 1)
	select {
	case f := <-m.Failures():
		if f.Replica != 1 || f.Node != 1 {
			t.Fatalf("detected wrong node: %+v", f)
		}
		if lat := time.Since(start); lat < 5*time.Millisecond {
			t.Fatalf("detection latency %v implausibly small for a heartbeat timeout", lat)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("failure not detected")
	}
	// No duplicate reports for the same physical node.
	select {
	case f := <-m.Failures():
		t.Fatalf("duplicate failure report: %+v", f)
	case <-time.After(50 * time.Millisecond):
	}
}

func TestCrossReplicaSendRejected(t *testing.T) {
	errCh := make(chan error, 1)
	var once sync.Once
	factory := func(addr Addr) Program {
		return progFunc{pup: func(*pup.PUPer) {}, run: func(ctx *Ctx) error {
			if ctx.Addr() == (Addr{0, 0, 0}) {
				err := ctx.Send(Addr{1, 0, 0}, 1, nil)
				once.Do(func() { errCh <- err })
			}
			return nil
		}}
	}
	m := newTestMachine(t, Config{NodesPerReplica: 1, TasksPerNode: 1, Factory: factory})
	m.Start()
	if err := m.Wait(); err != nil {
		t.Fatal(err)
	}
	if err := <-errCh; err == nil {
		t.Fatal("cross-replica send should be rejected")
	}
}

func TestSendInvalidAddress(t *testing.T) {
	errCh := make(chan error, 2)
	factory := func(addr Addr) Program {
		return progFunc{pup: func(*pup.PUPer) {}, run: func(ctx *Ctx) error {
			errCh <- ctx.Send(Addr{ctx.Addr().Replica, 99, 0}, 1, nil)
			return nil
		}}
	}
	m := newTestMachine(t, Config{NodesPerReplica: 1, TasksPerNode: 1, Factory: factory})
	m.Start()
	if err := m.Wait(); err != nil {
		t.Fatal(err)
	}
	if err := <-errCh; err == nil {
		t.Fatal("send to invalid node should error")
	}
}

func TestAppErrorPropagates(t *testing.T) {
	boom := errors.New("boom")
	factory := func(addr Addr) Program {
		return progFunc{pup: func(*pup.PUPer) {}, run: func(ctx *Ctx) error {
			if addr == (Addr{1, 0, 0}) {
				return boom
			}
			return nil
		}}
	}
	m := newTestMachine(t, Config{NodesPerReplica: 1, TasksPerNode: 1, Factory: factory})
	m.Start()
	err := m.Wait()
	if err == nil || !errors.Is(err, boom) {
		t.Fatalf("Wait = %v, want boom", err)
	}
}

func TestStopInterruptsWait(t *testing.T) {
	m := newTestMachine(t, Config{NodesPerReplica: 2, TasksPerNode: 1, Factory: ringFactory(1 << 30)})
	m.Start()
	go func() {
		time.Sleep(10 * time.Millisecond)
		m.Stop()
	}()
	if err := m.Wait(); !errors.Is(err, ErrStopped) {
		t.Fatalf("Wait = %v, want ErrStopped", err)
	}
}

func TestAddrString(t *testing.T) {
	if (Addr{1, 2, 3}).String() != "r1/n2/t3" {
		t.Fatal("Addr.String broken")
	}
}

// progFunc adapts plain functions to Program.
type progFunc struct {
	pup func(*pup.PUPer)
	run func(*Ctx) error
}

func (p progFunc) Pup(q *pup.PUPer)   { p.pup(q) }
func (p progFunc) Run(ctx *Ctx) error { return p.run(ctx) }

// parkGate parks every task when it reports iteration >= parkIter, and
// counts distinct parked tasks.
type parkGate struct {
	mu       sync.Mutex
	parkIter int
	want     int
	parked   map[Addr]bool
	release  chan struct{}
	allIn    chan struct{}
	done     bool
}

func newParkGate(iter, want int) *parkGate {
	return &parkGate{
		parkIter: iter,
		want:     want,
		parked:   make(map[Addr]bool),
		release:  make(chan struct{}),
		allIn:    make(chan struct{}),
	}
}

func (g *parkGate) Report(addr Addr, iter int) <-chan struct{} {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.done || iter < g.parkIter {
		return nil
	}
	if !g.parked[addr] {
		g.parked[addr] = true
		if len(g.parked) == g.want {
			close(g.allIn)
		}
	}
	return g.release
}

func (g *parkGate) Done(Addr) {}

func (g *parkGate) waitAllParked(t *testing.T) {
	t.Helper()
	select {
	case <-g.allIn:
	case <-time.After(5 * time.Second):
		g.mu.Lock()
		n := len(g.parked)
		g.mu.Unlock()
		t.Fatalf("only %d tasks parked", n)
	}
}

func (g *parkGate) releaseAll() {
	g.mu.Lock()
	g.done = true
	g.mu.Unlock()
	close(g.release)
}

func TestGateParksAndReleases(t *testing.T) {
	gate := newParkGate(5, 4)
	m := newTestMachine(t, Config{
		NodesPerReplica: 1,
		TasksPerNode:    2,
		Factory:         ringFactory(20),
		Gate:            gate,
	})
	m.Start()
	gate.waitAllParked(t)
	// While parked, nothing completes.
	if m.TaskCompleted(Addr{0, 0, 0}) {
		t.Fatal("task completed while parked")
	}
	gate.releaseAll()
	if err := m.Wait(); err != nil {
		t.Fatal(err)
	}
}

func TestMachineAccessors(t *testing.T) {
	m := newTestMachine(t, Config{NodesPerReplica: 3, TasksPerNode: 2, Spares: 1, Factory: ringFactory(1)})
	if m.NodesPerReplica() != 3 || m.TasksPerNode() != 2 || m.SpareCount() != 1 {
		t.Fatal("accessors broken")
	}
}

func TestCtxAccessors(t *testing.T) {
	type probe struct {
		numNodes, tasksPer, numTasks, global int
		roundTrip                            Addr
	}
	ch := make(chan probe, 1)
	factory := func(addr Addr) Program {
		return progFunc{pup: func(*pup.PUPer) {}, run: func(ctx *Ctx) error {
			if addr == (Addr{0, 1, 1}) {
				ch <- probe{ctx.NumNodes(), ctx.TasksPerNode(), ctx.NumTasks(), ctx.GlobalTask(), ctx.AddrOfGlobal(ctx.GlobalTask())}
			}
			return nil
		}}
	}
	m := newTestMachine(t, Config{NodesPerReplica: 2, TasksPerNode: 2, Factory: factory})
	m.Start()
	if err := m.Wait(); err != nil {
		t.Fatal(err)
	}
	p := <-ch
	if p.numNodes != 2 || p.tasksPer != 2 || p.numTasks != 4 || p.global != 3 || p.roundTrip != (Addr{0, 1, 1}) {
		t.Fatalf("ctx accessors: %+v", p)
	}
}

func TestCorruptTask(t *testing.T) {
	m := newTestMachine(t, Config{NodesPerReplica: 1, TasksPerNode: 1, Factory: ringFactory(3)})
	m.Start()
	if err := m.Wait(); err != nil {
		t.Fatal(err)
	}
	m.CorruptTask(Addr{0, 0, 0}, func(p pup.Pupable) {
		p.(*ringProg).Sum ^= 1
	})
	data, err := m.PackTask(Addr{0, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	// Compare against the healthy replica 1 twin: must mismatch.
	res, err := m.CheckTask(Addr{1, 0, 0}, data, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Match {
		t.Fatal("corruption not visible to checker")
	}
}

func TestReplicaTwinsIdentical(t *testing.T) {
	// The core SDC-detection premise: buddies' checkpoints are
	// byte-identical in a fault-free run.
	m := newTestMachine(t, Config{NodesPerReplica: 2, TasksPerNode: 2, Factory: ringFactory(7)})
	m.Start()
	if err := m.Wait(); err != nil {
		t.Fatal(err)
	}
	for n := 0; n < 2; n++ {
		for tk := 0; tk < 2; tk++ {
			c0, err := m.PackTask(Addr{0, n, tk})
			if err != nil {
				t.Fatal(err)
			}
			res, err := m.CheckTask(Addr{1, n, tk}, c0, 0)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Match {
				t.Fatalf("replica twins diverged at n%d/t%d: %v", n, tk, res.Mismatches)
			}
		}
	}
}

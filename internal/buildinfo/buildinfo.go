// Package buildinfo is the single source of version identity for every
// acr binary: each cmd/* main wires its -version flag through Flag, and
// the acrd daemon serves the same record on /healthz. Keeping the identity
// in one place means a fleet operator comparing a scraped /healthz against
// a binary's -version output is comparing like with like.
package buildinfo

import (
	"encoding/json"
	"fmt"
	"io"
	rtdebug "runtime/debug"
)

// Version is the release identity of this source tree. Overridable at link
// time (-ldflags "-X acr/internal/buildinfo.Version=v1.2.3"); the default
// marks an untagged development build.
var Version = "dev"

// Info is the identity record -version prints and /healthz serves.
type Info struct {
	// Name is the binary (or service) name, e.g. "acrd".
	Name string `json:"name"`
	// Version is the release identity (see the Version variable).
	Version string `json:"version"`
	// GoVersion is the toolchain that built the binary.
	GoVersion string `json:"go_version"`
	// VCSRevision / VCSModified identify the exact source state when the
	// build had VCS stamping available (empty / false otherwise).
	VCSRevision string `json:"vcs_revision,omitempty"`
	VCSModified bool   `json:"vcs_modified,omitempty"`
}

// Get assembles the identity record for the named binary, pulling the
// toolchain and VCS details from the embedded build info when present.
func Get(name string) Info {
	info := Info{Name: name, Version: Version}
	bi, ok := rtdebug.ReadBuildInfo()
	if !ok {
		return info
	}
	info.GoVersion = bi.GoVersion
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			info.VCSRevision = s.Value
		case "vcs.modified":
			info.VCSModified = s.Value == "true"
		}
	}
	return info
}

// String renders the one-line -version output.
func (i Info) String() string {
	s := fmt.Sprintf("%s %s", i.Name, i.Version)
	if i.VCSRevision != "" {
		rev := i.VCSRevision
		if len(rev) > 12 {
			rev = rev[:12]
		}
		s += " (" + rev
		if i.VCSModified {
			s += "+dirty"
		}
		s += ")"
	}
	if i.GoVersion != "" {
		s += " " + i.GoVersion
	}
	return s
}

// WriteJSON emits the record as JSON (the /healthz body).
func (i Info) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(i)
}

// HandleFlag implements the shared -version convention: when show is true,
// print the identity to w and report that the caller should exit.
func HandleFlag(w io.Writer, name string, show bool) bool {
	if !show {
		return false
	}
	fmt.Fprintln(w, Get(name).String())
	return true
}

package buildinfo

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestGetCarriesNameAndVersion(t *testing.T) {
	info := Get("acrd")
	if info.Name != "acrd" {
		t.Errorf("name = %q, want acrd", info.Name)
	}
	if info.Version != Version {
		t.Errorf("version = %q, want %q", info.Version, Version)
	}
	if !strings.HasPrefix(info.String(), "acrd "+Version) {
		t.Errorf("String() = %q, want prefix %q", info.String(), "acrd "+Version)
	}
}

func TestWriteJSONSchema(t *testing.T) {
	var sb strings.Builder
	if err := Get("acrrun").WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal([]byte(sb.String()), &m); err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"name", "version"} {
		if _, ok := m[k]; !ok {
			t.Errorf("healthz JSON missing key %q: %s", k, sb.String())
		}
	}
}

func TestHandleFlag(t *testing.T) {
	var sb strings.Builder
	if HandleFlag(&sb, "acrbench", false) {
		t.Fatal("HandleFlag(false) asked caller to exit")
	}
	if sb.Len() != 0 {
		t.Fatalf("HandleFlag(false) wrote %q", sb.String())
	}
	if !HandleFlag(&sb, "acrbench", true) {
		t.Fatal("HandleFlag(true) did not ask caller to exit")
	}
	if !strings.Contains(sb.String(), "acrbench") {
		t.Fatalf("version line %q missing binary name", sb.String())
	}
}

package netsim

import (
	"testing"

	"acr/internal/topology"
)

func TestChecksumRuleMatchesAdvantage(t *testing.T) {
	// For a large checkpoint the sign of the gamma < beta/4 rule must
	// agree with the actual time difference, across mappings (which vary
	// beta via the bottleneck load).
	const bytes = 64e6
	for _, tc := range []struct {
		shape  [3]int
		scheme topology.Scheme
	}{
		{[3]int{8, 8, 32}, topology.DefaultScheme},   // load 16: big beta
		{[3]int{32, 32, 32}, topology.DefaultScheme}, // load 16
		{[3]int{32, 32, 32}, topology.ColumnScheme},  // load 1: tiny beta
	} {
		m := model(t, tc.shape, tc.scheme, 0)
		rule := m.ChecksumBeneficial()
		adv := m.ChecksumAdvantage(bytes, false)
		if rule != (adv > 0) {
			t.Errorf("%v/%v: rule says beneficial=%v but advantage=%.4fs",
				tc.shape, tc.scheme, rule, adv)
		}
	}
}

func TestChecksumRuleDirections(t *testing.T) {
	// Default mapping at Z=32 (load 16): beta large, checksum wins.
	def := model(t, [3]int{8, 8, 32}, topology.DefaultScheme, 0)
	if !def.ChecksumBeneficial() {
		t.Error("checksum should be beneficial under the congested default mapping")
	}
	// Column mapping (load 1): beta small, full exchange wins.
	col := model(t, [3]int{8, 8, 32}, topology.ColumnScheme, 0)
	if col.ChecksumBeneficial() {
		t.Error("checksum should lose to the column mapping")
	}
	if def.EffectiveBeta() <= col.EffectiveBeta() {
		t.Error("default mapping must have the larger effective beta")
	}
	if def.EffectiveGamma() != col.EffectiveGamma() {
		t.Error("gamma is a node property, independent of mapping")
	}
}

func TestSemiBlockingOnlyLocalBlocks(t *testing.T) {
	m := model(t, [3]int{8, 8, 32}, topology.DefaultScheme, 0)
	const bytes = 16e6
	full := m.Checkpoint(bytes, FullCheckpoint, false)
	semi := m.SemiBlocking(bytes, FullCheckpoint, false)
	if semi.Blocking != full.Local {
		t.Fatalf("semi-blocking pause %v, want local capture %v", semi.Blocking, full.Local)
	}
	if semi.Background != full.Transfer+full.Compare {
		t.Fatal("background must carry transfer + compare")
	}
	if semi.Blocking+semi.Background != full.Total() {
		t.Fatal("no work disappears, it just moves off the critical path")
	}
}

func TestSemiBlockingSpeedupRange(t *testing.T) {
	m := model(t, [3]int{8, 8, 32}, topology.DefaultScheme, 0)
	s := m.SemiBlockingSpeedup(16e6, FullCheckpoint, false)
	if s <= 0 || s >= 1 {
		t.Fatalf("speedup ratio %v outside (0,1)", s)
	}
	// Under the congested default mapping, the overlap should hide most
	// of the checkpoint cost (transfer dominates).
	if s > 0.35 {
		t.Errorf("expected transfer-dominated round to hide >65%% of cost, blocked fraction %v", s)
	}
	if got := m.SemiBlockingSpeedup(0, FullCheckpoint, false); got != 1 {
		t.Fatalf("degenerate case should return 1, got %v", got)
	}
}

package netsim

import (
	"math/rand"
	"sync"
)

// This file adds a live link-fault model to netsim: where the analytic
// model (netsim.go) and the packet DES (des.go) predict transfer *cost*,
// Link perturbs transfer *delivery* — frames are lost, duplicated, or
// reordered with configured probabilities, deterministically per seed.
// The hardened checkpoint-exchange protocol in internal/core drives its
// buddy transfers and compare-result messages through a Link, so a lossy
// interconnect degrades checkpoint latency (retries, backoff) instead of
// wedging or corrupting a round.

// LinkParams configures a lossy link. Each frame suffers at most one
// fault, drawn from a single uniform roll: loss with probability Loss,
// duplication with probability Dup, reordering (held back and released
// behind a later delivery) with probability Reorder. The probabilities
// must be non-negative and sum to at most 1; the remainder is clean
// delivery.
type LinkParams struct {
	Loss    float64
	Dup     float64
	Reorder float64
	// Seed drives the fault draws; the fault pattern is a pure function
	// of the seed and the frame sequence.
	Seed int64
}

// LinkStats counts a link's frame-level activity.
type LinkStats struct {
	Sent       int64 `json:"sent"`      // frames offered to the link
	Delivered  int64 `json:"delivered"` // frames that came out the far end (includes duplicates)
	Lost       int64 `json:"lost"`
	Duplicated int64 `json:"duplicated"`
	Reordered  int64 `json:"reordered"`
}

// Link is a deterministic lossy/duplicating/reordering link. Transfer is
// synchronous: Send passes one frame in and returns whatever comes out
// the far end now — possibly nothing (lost or held for reordering), the
// frame twice (duplicated), or the frame plus previously held frames it
// overtook. Safe for concurrent use; concurrent senders serialize on an
// internal mutex (the fault pattern then depends on arrival order, which
// single-goroutine protocol drivers keep deterministic).
type Link struct {
	mu    sync.Mutex
	p     LinkParams
	rng   *rand.Rand
	held  []any
	stats LinkStats
}

// NewLink builds a link; negative probabilities are clamped to zero.
func NewLink(p LinkParams) *Link {
	if p.Loss < 0 {
		p.Loss = 0
	}
	if p.Dup < 0 {
		p.Dup = 0
	}
	if p.Reorder < 0 {
		p.Reorder = 0
	}
	return &Link{p: p, rng: rand.New(rand.NewSource(p.Seed))}
}

// Send offers one frame to the link and returns the frames delivered at
// the far end, in delivery order.
func (l *Link) Send(frame any) []any {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.stats.Sent++
	var out []any
	roll := l.rng.Float64()
	switch {
	case roll < l.p.Loss:
		l.stats.Lost++
	case roll < l.p.Loss+l.p.Dup:
		l.stats.Duplicated++
		out = append(out, frame, frame)
	case roll < l.p.Loss+l.p.Dup+l.p.Reorder:
		l.stats.Reordered++
		l.held = append(l.held, frame)
	default:
		out = append(out, frame)
	}
	// A delivery releases every held frame behind it: the overtaking
	// frame arrives first, then the stragglers.
	if len(out) > 0 && len(l.held) > 0 {
		out = append(out, l.held...)
		l.held = nil
	}
	l.stats.Delivered += int64(len(out))
	return out
}

// Flush releases every held frame (end-of-round drain, so a reordered
// frame cannot be silently stranded).
func (l *Link) Flush() []any {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := l.held
	l.held = nil
	l.stats.Delivered += int64(len(out))
	return out
}

// Stats returns a snapshot of the link counters.
func (l *Link) Stats() LinkStats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.stats
}

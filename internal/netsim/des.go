package netsim

import (
	"fmt"

	"acr/internal/sim"
	"acr/internal/topology"
)

// This file contains a packet-level discrete-event simulation of the torus
// network. The closed-form model in netsim.go claims that a buddy-exchange
// phase drains when its most congested link drains; the DES checks that
// claim from first principles: messages are split into packets, every
// packet traverses its dimension-ordered route hop by hop, each directional
// link serializes the packets crossing it, and packets cut through to the
// next hop as soon as their tail clears the link. Tests assert that the
// closed form and the DES agree on phase completion times and orderings.

// DESConfig parameterizes a network simulation.
type DESConfig struct {
	// PacketBytes is the segmentation size; smaller packets pipeline
	// better but cost more events. Defaults to 64 KiB.
	PacketBytes float64
}

func (c *DESConfig) defaults() {
	if c.PacketBytes <= 0 {
		c.PacketBytes = 64 << 10
	}
}

// Transfer is one point-to-point message for the DES.
type Transfer struct {
	Src, Dst int // torus node ranks
	Bytes    float64
}

// SimulateTransfers runs the packet-level DES for a set of concurrent
// transfers, all injected at time zero, and returns the phase completion
// time (the instant the last packet's tail reaches its destination).
func SimulateTransfers(t topology.Torus, p Params, transfers []Transfer, cfg DESConfig) (float64, error) {
	cfg.defaults()
	if p.LinkBandwidth <= 0 || p.InjectionBandwidth <= 0 {
		return 0, fmt.Errorf("netsim: DES needs positive bandwidths")
	}

	type packet struct {
		route []topology.Link
		bytes float64
	}
	var packets []*packet
	for _, tr := range transfers {
		if tr.Bytes <= 0 {
			continue
		}
		if tr.Src == tr.Dst {
			continue
		}
		route := t.Route(t.CoordOf(tr.Src), t.CoordOf(tr.Dst))
		remaining := tr.Bytes
		for remaining > 0 {
			b := cfg.PacketBytes
			if b > remaining {
				b = remaining
			}
			packets = append(packets, &packet{route: route, bytes: b})
			remaining -= b
		}
	}
	if len(packets) == 0 {
		return 0, nil
	}

	// linkFree[i] is the time directional link i finishes its current
	// transmission; nicFree[n] is the same for node n's injection port.
	linkFree := make([]float64, t.NumLinks())
	nicFree := make([]float64, t.Nodes())

	eng := sim.NewEngine()
	end := 0.0

	// hop advances a packet onto route[hopIdx] at the engine's current
	// time: it waits for the link, holds it for the serialization time,
	// and cuts through to the next hop one latency later.
	var hop func(e *sim.Engine, pk *packet, hopIdx int)
	hop = func(e *sim.Engine, pk *packet, hopIdx int) {
		link := pk.route[hopIdx]
		idx := t.LinkIndex(link)
		start := e.Now()
		if linkFree[idx] > start {
			start = linkFree[idx]
		}
		ser := pk.bytes / p.LinkBandwidth
		linkFree[idx] = start + ser
		tailAt := start + p.LinkLatency + ser
		if hopIdx+1 < len(pk.route) {
			eng.At(tailAt, func(e *sim.Engine) { hop(e, pk, hopIdx+1) })
			return
		}
		if tailAt > end {
			end = tailAt
		}
	}

	// Injection: each source node's NIC serializes its own packets.
	for _, pk := range packets {
		pk := pk
		src := t.RankOf(pk.route[0].From)
		inj := pk.bytes / p.InjectionBandwidth
		start := nicFree[src]
		nicFree[src] = start + inj
		eng.At(start+inj, func(e *sim.Engine) { hop(e, pk, 0) })
	}
	eng.Run()
	return end, nil
}

// SimulateBuddyExchange runs the DES for the checkpoint-exchange pattern:
// every replica-0 node sends bytesPerNode to its buddy.
func SimulateBuddyExchange(m *topology.Mapping, p Params, bytesPerNode float64, cfg DESConfig) (float64, error) {
	var transfers []Transfer
	for _, rank := range m.Members(0) {
		transfers = append(transfers, Transfer{Src: rank, Dst: m.BuddyOf(rank), Bytes: bytesPerNode})
	}
	return SimulateTransfers(m.Torus, p, transfers, cfg)
}

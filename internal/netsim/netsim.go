// Package netsim provides an alpha-beta network cost model with per-link
// contention on a 3D torus, plus the node-local costs (serialization,
// comparison, checksum computation) that make up an ACR checkpoint or
// restart round.
//
// The model is deliberately simple — the paper's Figures 8-11 are explained
// by three effects this model captures exactly:
//
//  1. a transfer phase completes when the most loaded link drains, so the
//     default mapping's time scales with the Z bisection load while column
//     and mixed mappings stay flat;
//  2. the checksum method replaces O(bytes) network traffic with O(bytes)
//     extra arithmetic, which wins only when gamma < beta/4 (§4.2);
//  3. restart under strong resilience moves a single checkpoint while
//     medium/weak move one per node, recreating the same congestion as the
//     checkpoint exchange.
package netsim

import (
	"fmt"

	"acr/internal/topology"
)

// Params holds the machine cost parameters. All bandwidths are bytes/second
// and latencies seconds. The defaults (see BGPParams) are calibrated to a
// Blue Gene/P-class machine so that the reproduced figures land in the same
// range as the paper; the shapes do not depend on the calibration.
type Params struct {
	// LinkBandwidth is the payload bandwidth of one directional torus link.
	LinkBandwidth float64
	// LinkLatency is the per-hop latency (alpha).
	LinkLatency float64
	// InjectionBandwidth bounds how fast a single node can source or sink
	// traffic regardless of route diversity.
	InjectionBandwidth float64
	// SerializeBandwidth is the node-local rate of producing a checkpoint
	// via the PUP framework (traversal + copy).
	SerializeBandwidth float64
	// CompareBandwidth is the node-local rate of comparing two resident
	// checkpoints byte by byte.
	CompareBandwidth float64
	// ChecksumBandwidth is the node-local rate of computing a Fletcher
	// checksum over a checkpoint. Per §4.2 this costs about 4 arithmetic
	// instructions per byte versus 1 for a plain copy, so it defaults to
	// SerializeBandwidth/4 scaled by the copy/compute ratio.
	ChecksumBandwidth float64
	// SoftwareOverhead is a fixed per-operation cost (scheduling,
	// barriers); restarts pay it a few times (§6.3).
	SoftwareOverhead float64
	// ScatterPenalty multiplies serialization cost for applications whose
	// checkpoint data is scattered in memory (the MD mini-apps, Table 2).
	ScatterPenalty float64
}

// BGPParams returns cost parameters for a Blue Gene/P-class torus.
func BGPParams() Params {
	return Params{
		LinkBandwidth:      425e6, // 425 MB/s per torus link direction
		LinkLatency:        3e-6,
		InjectionBandwidth: 2 * 425e6,
		SerializeBandwidth: 350e6,
		CompareBandwidth:   800e6,
		ChecksumBandwidth:  150e6,
		SoftwareOverhead:   2e-3,
		ScatterPenalty:     1.0,
	}
}

// Method is the SDC-detection data-exchange method of §4.2.
type Method int

// Detection/exchange methods evaluated in Figures 8-11.
const (
	// FullCheckpoint ships the whole checkpoint to the buddy and compares
	// byte by byte. Transfer cost depends on the mapping.
	FullCheckpoint Method = iota
	// Checksum ships only a Fletcher checksum (32 bytes) and compares
	// checksums; computation cost replaces transfer cost.
	Checksum
)

func (m Method) String() string {
	switch m {
	case FullCheckpoint:
		return "full"
	case Checksum:
		return "checksum"
	}
	return fmt.Sprintf("Method(%d)", int(m))
}

// ChecksumBytes is the wire size of the checksum exchange (§6.2: "the
// checksum data size is only 32 bytes").
const ChecksumBytes = 32

// Model combines a mapping with machine parameters and answers time
// queries about collective checkpoint/restart operations.
type Model struct {
	Params  Params
	Mapping *topology.Mapping
}

// New returns a model for the given mapping and parameters.
func New(m *topology.Mapping, p Params) *Model {
	return &Model{Params: p, Mapping: m}
}

// transferTime returns the completion time of the all-buddies exchange in
// which every node of one replica sends bytesPerNode to its buddy. The phase
// drains when the most congested link finishes; per-node injection also
// bounds it.
func (m *Model) transferTime(bytesPerNode float64) float64 {
	if bytesPerNode <= 0 {
		return 0
	}
	maxLoad := float64(m.Mapping.MaxBuddyLinkLoad())
	maxHops := 0
	for _, rank := range m.Mapping.Members(0) {
		if d := m.Mapping.BuddyDistance(rank); d > maxHops {
			maxHops = d
		}
	}
	link := maxLoad * bytesPerNode / m.Params.LinkBandwidth
	inject := bytesPerNode / m.Params.InjectionBandwidth
	lat := float64(maxHops) * m.Params.LinkLatency
	t := link
	if inject > t {
		t = inject
	}
	return t + lat
}

// pointTransferTime returns the time to ship bytes between one node pair
// (the strong-resilience restart path: a single buddy-to-spare message, so
// effectively no contention).
func (m *Model) pointTransferTime(bytes float64, hops int) float64 {
	if bytes <= 0 {
		return 0
	}
	return bytes/m.Params.LinkBandwidth + float64(hops)*m.Params.LinkLatency
}

// CheckpointCost is the decomposition plotted in Figure 8.
type CheckpointCost struct {
	Local    float64 // local serialization (pup) time
	Transfer float64 // inter-replica exchange time
	Compare  float64 // comparison (byte compare or checksum compute+compare)
}

// Total returns the summed checkpoint time; the phases are sequential in
// ACR's blocking checkpoint algorithm.
func (c CheckpointCost) Total() float64 { return c.Local + c.Transfer + c.Compare }

// Checkpoint returns the cost of one replicated checkpoint with SDC
// detection for a per-node checkpoint of the given size, under the given
// method. scattered marks low-memory apps whose data layout inflates
// serialization (Table 2's "low memory pressure" MD apps).
func (m *Model) Checkpoint(bytesPerNode float64, method Method, scattered bool) CheckpointCost {
	p := m.Params
	local := bytesPerNode / p.SerializeBandwidth
	if scattered {
		local *= p.ScatterPenalty
	}
	var c CheckpointCost
	c.Local = local
	switch method {
	case FullCheckpoint:
		c.Transfer = m.transferTime(bytesPerNode)
		c.Compare = bytesPerNode / p.CompareBandwidth
	case Checksum:
		// Compute the checksum (the dominant cost), ship 32 bytes,
		// compare 32 bytes (negligible).
		c.Compare = bytesPerNode/p.ChecksumBandwidth + float64(ChecksumBytes)/p.LinkBandwidth
		c.Transfer = m.transferTime(ChecksumBytes)
	}
	return c
}

// RestartCost is the decomposition plotted in Figure 10.
type RestartCost struct {
	Transfer       float64 // checkpoint shipping
	Reconstruction float64 // deserialize + rebuild state + synchronization
}

// Total returns the summed restart time.
func (r RestartCost) Total() float64 { return r.Transfer + r.Reconstruction }

// RestartScheme selects which resilience scheme's restart path to cost.
type RestartScheme int

// Restart paths (§2.3): strong ships one checkpoint to the spare node;
// medium and weak ship one checkpoint per node (same congestion pattern as
// the checkpoint exchange).
const (
	StrongRestart RestartScheme = iota
	MediumRestart
	WeakRestart
)

func (s RestartScheme) String() string {
	switch s {
	case StrongRestart:
		return "strong"
	case MediumRestart:
		return "medium"
	case WeakRestart:
		return "weak"
	}
	return fmt.Sprintf("RestartScheme(%d)", int(s))
}

// Restart returns the cost of restarting the crashed replica after a hard
// error. Reconstruction includes deserialization plus the synchronization
// overhead (barriers and broadcasts) that dominates for small checkpoints
// (§6.3, LeanMD).
func (m *Model) Restart(bytesPerNode float64, scheme RestartScheme, scattered bool) RestartCost {
	p := m.Params
	recon := bytesPerNode / p.SerializeBandwidth
	if scattered {
		recon *= p.ScatterPenalty
	}
	// Restart is an unexpected event coordinated with several barriers
	// and broadcasts whose cost grows slowly (logarithmically) with the
	// node count.
	n := m.Mapping.NodesPerReplica()
	sync := p.SoftwareOverhead * float64(4+log2(n))
	var r RestartCost
	r.Reconstruction = recon + sync
	switch scheme {
	case StrongRestart:
		// Only the buddy of the crashed node ships its checkpoint, to
		// the spare: one message, no contention.
		maxHops := 0
		for _, rank := range m.Mapping.Members(0) {
			if d := m.Mapping.BuddyDistance(rank); d > maxHops {
				maxHops = d
			}
		}
		r.Transfer = m.pointTransferTime(bytesPerNode, maxHops+2)
	case MediumRestart, WeakRestart:
		// Every healthy node ships its checkpoint to its buddy.
		r.Transfer = m.transferTime(bytesPerNode)
	}
	return r
}

func log2(n int) int {
	k := 0
	for n > 1 {
		n >>= 1
		k++
	}
	return k
}

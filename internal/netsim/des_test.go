package netsim

import (
	"math"
	"testing"

	"acr/internal/topology"
)

func desExchange(t *testing.T, shape [3]int, scheme topology.Scheme, chunk int, bytes float64) (des, closed float64) {
	t.Helper()
	tr, err := topology.NewTorus(shape[0], shape[1], shape[2])
	if err != nil {
		t.Fatal(err)
	}
	m, err := topology.NewMapping(tr, scheme, chunk)
	if err != nil {
		t.Fatal(err)
	}
	p := BGPParams()
	got, err := SimulateBuddyExchange(m, p, bytes, DESConfig{})
	if err != nil {
		t.Fatal(err)
	}
	return got, New(m, p).transferTime(bytes)
}

// The headline validation: the packet-level simulation agrees with the
// closed-form bottleneck model on the buddy-exchange completion time.
func TestDESValidatesClosedForm(t *testing.T) {
	const bytes = 4e6
	cases := []struct {
		shape  [3]int
		scheme topology.Scheme
		chunk  int
	}{
		{[3]int{4, 4, 8}, topology.DefaultScheme, 0},
		{[3]int{8, 8, 8}, topology.DefaultScheme, 0},
		{[3]int{8, 8, 16}, topology.DefaultScheme, 0},
		{[3]int{8, 8, 8}, topology.ColumnScheme, 0},
		{[3]int{8, 8, 8}, topology.MixedScheme, 2},
	}
	for _, c := range cases {
		des, closed := desExchange(t, c.shape, c.scheme, c.chunk, bytes)
		if des <= 0 || closed <= 0 {
			t.Fatalf("%v/%v: degenerate times %v, %v", c.shape, c.scheme, des, closed)
		}
		rel := math.Abs(des-closed) / closed
		if rel > 0.25 {
			t.Errorf("%v/%v: DES %.4fs vs closed form %.4fs (%.0f%% apart)",
				c.shape, c.scheme, des, closed, rel*100)
		}
	}
}

// The DES independently reproduces the Figure 8 shape: default-mapping
// exchange time doubles when the Z extent doubles; column mapping stays
// flat.
func TestDESGrowthWithZ(t *testing.T) {
	const bytes = 4e6
	d8, _ := desExchange(t, [3]int{8, 8, 8}, topology.DefaultScheme, 0, bytes)
	d16, _ := desExchange(t, [3]int{8, 8, 16}, topology.DefaultScheme, 0, bytes)
	if ratio := d16 / d8; ratio < 1.7 || ratio > 2.3 {
		t.Errorf("default exchange Z8->Z16 ratio = %.2f, want ~2", ratio)
	}
	c8, _ := desExchange(t, [3]int{8, 8, 8}, topology.ColumnScheme, 0, bytes)
	c16, _ := desExchange(t, [3]int{8, 8, 16}, topology.ColumnScheme, 0, bytes)
	if rel := math.Abs(c16-c8) / c8; rel > 0.1 {
		t.Errorf("column exchange should be flat: %.4f vs %.4f", c8, c16)
	}
	// Ordering across mappings at a fixed allocation.
	m8, _ := desExchange(t, [3]int{8, 8, 8}, topology.MixedScheme, 2, bytes)
	if !(d8 > m8 && m8 > c8) {
		t.Errorf("mapping ordering broken: default %.4f, mixed %.4f, column %.4f", d8, m8, c8)
	}
}

func TestDESDegenerateInputs(t *testing.T) {
	tr, _ := topology.NewTorus(4, 4, 4)
	p := BGPParams()
	// No transfers.
	got, err := SimulateTransfers(tr, p, nil, DESConfig{})
	if err != nil || got != 0 {
		t.Fatalf("empty set: %v, %v", got, err)
	}
	// Zero-byte and self transfers are skipped.
	got, err = SimulateTransfers(tr, p, []Transfer{{Src: 0, Dst: 0, Bytes: 100}, {Src: 1, Dst: 2, Bytes: 0}}, DESConfig{})
	if err != nil || got != 0 {
		t.Fatalf("degenerate transfers: %v, %v", got, err)
	}
	// Invalid params.
	if _, err := SimulateTransfers(tr, Params{}, []Transfer{{Src: 0, Dst: 1, Bytes: 1}}, DESConfig{}); err == nil {
		t.Fatal("zero bandwidth must fail")
	}
}

func TestDESSingleTransferMatchesAnalytic(t *testing.T) {
	tr, _ := topology.NewTorus(8, 1, 1)
	p := BGPParams()
	const bytes = 1e6
	got, err := SimulateTransfers(tr, p, []Transfer{{Src: 0, Dst: 3, Bytes: bytes}}, DESConfig{PacketBytes: 64 << 10})
	if err != nil {
		t.Fatal(err)
	}
	// With pipelining, injection overlaps transmission: the first link
	// serializes the whole message after the first packet is injected,
	// and each further hop adds one latency plus one packet time for the
	// tail to drain through.
	ser := bytes / p.LinkBandwidth
	pktSer := float64(64<<10) / p.LinkBandwidth
	pktInj := float64(64<<10) / p.InjectionBandwidth
	want := pktInj + ser + 2*(p.LinkLatency+pktSer) + p.LinkLatency
	if rel := math.Abs(got-want) / want; rel > 0.05 {
		t.Errorf("single transfer: DES %.6f vs analytic %.6f", got, want)
	}
}

func TestDESPacketSizeInsensitivity(t *testing.T) {
	// Completion time must be stable across reasonable packet sizes
	// (pipelining works), not an artifact of segmentation.
	tr, _ := topology.NewTorus(8, 8, 8)
	m, _ := topology.NewMapping(tr, topology.DefaultScheme, 0)
	p := BGPParams()
	a, err := SimulateBuddyExchange(m, p, 2e6, DESConfig{PacketBytes: 32 << 10})
	if err != nil {
		t.Fatal(err)
	}
	b, err := SimulateBuddyExchange(m, p, 2e6, DESConfig{PacketBytes: 256 << 10})
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(a-b) / a; rel > 0.15 {
		t.Errorf("packet-size sensitivity too high: %.4f vs %.4f", a, b)
	}
}

func BenchmarkDESBuddyExchange(b *testing.B) {
	tr, _ := topology.NewTorus(8, 8, 8)
	m, _ := topology.NewMapping(tr, topology.DefaultScheme, 0)
	p := BGPParams()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SimulateBuddyExchange(m, p, 4e6, DESConfig{}); err != nil {
			b.Fatal(err)
		}
	}
}

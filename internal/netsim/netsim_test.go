package netsim

import (
	"testing"

	"acr/internal/topology"
)

func model(t *testing.T, shape [3]int, scheme topology.Scheme, chunk int) *Model {
	t.Helper()
	tr, err := topology.NewTorus(shape[0], shape[1], shape[2])
	if err != nil {
		t.Fatal(err)
	}
	m, err := topology.NewMapping(tr, scheme, chunk)
	if err != nil {
		t.Fatal(err)
	}
	return New(m, BGPParams())
}

func TestCheckpointCostComponentsPositive(t *testing.T) {
	m := model(t, [3]int{8, 8, 8}, topology.DefaultScheme, 0)
	c := m.Checkpoint(16e6, FullCheckpoint, false)
	if c.Local <= 0 || c.Transfer <= 0 || c.Compare <= 0 {
		t.Fatalf("cost components must be positive: %+v", c)
	}
	if c.Total() != c.Local+c.Transfer+c.Compare {
		t.Fatal("Total != sum of parts")
	}
}

func TestZeroBytes(t *testing.T) {
	m := model(t, [3]int{8, 8, 8}, topology.DefaultScheme, 0)
	c := m.Checkpoint(0, FullCheckpoint, false)
	if c.Local != 0 || c.Compare != 0 {
		t.Fatalf("zero-size checkpoint should be free: %+v", c)
	}
}

// The headline Figure 8 shape: with the default mapping, the transfer
// component grows roughly 4x from the Z=8 to the Z=32 allocation and then
// stays flat, while column mapping is flat throughout.
func TestFig8TransferShape(t *testing.T) {
	const bytes = 16e6
	transfer := func(shape [3]int, s topology.Scheme) float64 {
		return model(t, shape, s, 0).Checkpoint(bytes, FullCheckpoint, false).Transfer
	}
	d8 := transfer([3]int{8, 8, 8}, topology.DefaultScheme)
	d32 := transfer([3]int{8, 8, 32}, topology.DefaultScheme)
	d32big := transfer([3]int{32, 32, 32}, topology.DefaultScheme)
	if ratio := d32 / d8; ratio < 3.5 || ratio > 4.5 {
		t.Errorf("default transfer growth Z8->Z32 = %.2fx, want ~4x", ratio)
	}
	if diff := d32big/d32 - 1; diff > 0.05 || diff < -0.05 {
		t.Errorf("default transfer should flatten beyond Z=32: %.3g vs %.3g", d32, d32big)
	}
	c8 := transfer([3]int{8, 8, 8}, topology.ColumnScheme)
	c32 := transfer([3]int{32, 32, 32}, topology.ColumnScheme)
	if diff := c32/c8 - 1; diff > 0.05 || diff < -0.05 {
		t.Errorf("column transfer should be flat: %.3g vs %.3g", c8, c32)
	}
	if d32 <= c32 {
		t.Errorf("default transfer (%.3g) should exceed column (%.3g) at scale", d32, c32)
	}
}

// Checksum method: transfer is negligible and constant; compare (checksum
// compute) dominates and is independent of the mapping (§6.2).
func TestChecksumMethodShape(t *testing.T) {
	const bytes = 16e6
	def := model(t, [3]int{32, 32, 32}, topology.DefaultScheme, 0).Checkpoint(bytes, Checksum, false)
	col := model(t, [3]int{32, 32, 32}, topology.ColumnScheme, 0).Checkpoint(bytes, Checksum, false)
	if def.Transfer > 1e-3 {
		t.Errorf("checksum transfer should be trivial, got %.3g s", def.Transfer)
	}
	if rel := (def.Compare - col.Compare) / def.Compare; rel > 1e-9 || rel < -1e-9 {
		t.Errorf("checksum compare should not depend on mapping: %.3g vs %.3g", def.Compare, col.Compare)
	}
	// For high-memory-pressure apps the checksum total exceeds the
	// column-mapping total (§6.2: "overheads for it are even larger than
	// the column-mapping for high memory pressure applications").
	colFull := model(t, [3]int{32, 32, 32}, topology.ColumnScheme, 0).Checkpoint(bytes, FullCheckpoint, false)
	if def.Total() <= colFull.Total() {
		t.Errorf("checksum total (%.3g) should exceed column full-checkpoint total (%.3g) for large checkpoints", def.Total(), colFull.Total())
	}
}

// For small scattered checkpoints (MD apps) the checksum method wins
// (§6.2: "the checksum method outperforms other schemes" for LeanMD/miniMD).
func TestChecksumWinsForSmallCheckpoints(t *testing.T) {
	const bytes = 0.5e6
	p := BGPParams()
	p.ScatterPenalty = 3.0
	tr, _ := topology.NewTorus(32, 32, 32)
	mapDef, _ := topology.NewMapping(tr, topology.DefaultScheme, 0)
	m := New(mapDef, p)
	ck := m.Checkpoint(bytes, Checksum, true)
	full := m.Checkpoint(bytes, FullCheckpoint, true)
	if ck.Total() >= full.Total() {
		t.Errorf("checksum (%.4g) should beat default full exchange (%.4g) for small scattered checkpoints", ck.Total(), full.Total())
	}
}

func TestStrongRestartCheapest(t *testing.T) {
	for _, shape := range [][3]int{{8, 8, 8}, {16, 16, 32}} {
		m := model(t, shape, topology.DefaultScheme, 0)
		strong := m.Restart(16e6, StrongRestart, false)
		medium := m.Restart(16e6, MediumRestart, false)
		if strong.Total() >= medium.Total() {
			t.Errorf("%v: strong restart (%.3g) should beat medium (%.3g)", shape, strong.Total(), medium.Total())
		}
		if strong.Transfer >= medium.Transfer {
			t.Errorf("%v: strong restart transfer should be smaller", shape)
		}
	}
}

func TestMediumRestartMappingSensitive(t *testing.T) {
	def := model(t, [3]int{32, 32, 32}, topology.DefaultScheme, 0).Restart(16e6, MediumRestart, false)
	col := model(t, [3]int{32, 32, 32}, topology.ColumnScheme, 0).Restart(16e6, MediumRestart, false)
	if def.Transfer <= col.Transfer {
		t.Errorf("default medium restart (%.3g) should exceed column (%.3g)", def.Transfer, col.Transfer)
	}
	// Strong restart is mapping-insensitive (§6.3: a single message).
	defS := model(t, [3]int{32, 32, 32}, topology.DefaultScheme, 0).Restart(16e6, StrongRestart, false)
	colS := model(t, [3]int{32, 32, 32}, topology.ColumnScheme, 0).Restart(16e6, StrongRestart, false)
	if rel := (defS.Total() - colS.Total()) / defS.Total(); rel > 0.01 || rel < -0.01 {
		t.Errorf("strong restart should not depend on mapping: %.4g vs %.4g", defS.Total(), colS.Total())
	}
}

// Reconstruction sync overhead grows slowly with node count — the LeanMD
// effect in Figure 10c.
func TestReconstructionSyncGrows(t *testing.T) {
	small := model(t, [3]int{8, 8, 8}, topology.DefaultScheme, 0).Restart(0.1e6, StrongRestart, true)
	big := model(t, [3]int{32, 32, 32}, topology.DefaultScheme, 0).Restart(0.1e6, StrongRestart, true)
	if big.Reconstruction <= small.Reconstruction {
		t.Errorf("reconstruction should grow with node count: %.4g vs %.4g", small.Reconstruction, big.Reconstruction)
	}
}

func TestMethodStrings(t *testing.T) {
	if FullCheckpoint.String() != "full" || Checksum.String() != "checksum" {
		t.Fatal("Method.String broken")
	}
	if StrongRestart.String() != "strong" || MediumRestart.String() != "medium" || WeakRestart.String() != "weak" {
		t.Fatal("RestartScheme.String broken")
	}
	if Method(9).String() == "" || RestartScheme(9).String() == "" {
		t.Fatal("unknown values should format")
	}
}

func TestLog2(t *testing.T) {
	cases := map[int]int{1: 0, 2: 1, 3: 1, 4: 2, 1024: 10}
	for n, want := range cases {
		if got := log2(n); got != want {
			t.Errorf("log2(%d) = %d, want %d", n, got, want)
		}
	}
}

package netsim

import (
	"testing"
)

// TestLinkClean: a fault-free link is a transparent pipe.
func TestLinkClean(t *testing.T) {
	l := NewLink(LinkParams{Seed: 1})
	for i := 0; i < 100; i++ {
		out := l.Send(i)
		if len(out) != 1 || out[0].(int) != i {
			t.Fatalf("frame %d: got %v, want [%d]", i, out, i)
		}
	}
	s := l.Stats()
	if s.Sent != 100 || s.Delivered != 100 || s.Lost+s.Duplicated+s.Reordered != 0 {
		t.Fatalf("clean link stats: %+v", s)
	}
}

// TestLinkDeterministic: the same seed and frame sequence reproduce the
// identical fault pattern and delivery order.
func TestLinkDeterministic(t *testing.T) {
	run := func() ([]any, LinkStats) {
		l := NewLink(LinkParams{Loss: 0.2, Dup: 0.15, Reorder: 0.1, Seed: 99})
		var all []any
		for i := 0; i < 500; i++ {
			all = append(all, l.Send(i)...)
		}
		all = append(all, l.Flush()...)
		return all, l.Stats()
	}
	a, as := run()
	b, bs := run()
	if as != bs {
		t.Fatalf("stats differ: %+v vs %+v", as, bs)
	}
	if len(a) != len(b) {
		t.Fatalf("delivery lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("delivery %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}

// TestLinkRates: over many frames, observed fault counts track the
// configured probabilities (loose tolerance; the draws are seeded so this
// is reproducible, not statistical).
func TestLinkRates(t *testing.T) {
	const n = 20000
	l := NewLink(LinkParams{Loss: 0.1, Dup: 0.05, Reorder: 0.05, Seed: 7})
	for i := 0; i < n; i++ {
		l.Send(i)
	}
	l.Flush()
	s := l.Stats()
	approx := func(name string, got int64, p float64) {
		want := p * n
		if f := float64(got); f < want*0.8 || f > want*1.2 {
			t.Errorf("%s = %d, want ~%.0f", name, got, want)
		}
	}
	approx("Lost", s.Lost, 0.1)
	approx("Duplicated", s.Duplicated, 0.05)
	approx("Reordered", s.Reordered, 0.05)
	// Conservation: every frame is lost, held-then-released, duplicated,
	// or delivered once.
	if s.Delivered != s.Sent-s.Lost+s.Duplicated {
		t.Fatalf("conservation broken: %+v", s)
	}
}

// TestLinkReorderRelease: a held frame is delivered behind the next
// delivery that overtakes it, preserving the held frame's payload.
func TestLinkReorderRelease(t *testing.T) {
	// Find a seed whose first roll reorders and second delivers cleanly.
	var l *Link
	var out []any
	for seed := int64(0); ; seed++ {
		l = NewLink(LinkParams{Reorder: 0.3, Seed: seed})
		if first := l.Send("a"); len(first) != 0 {
			continue // "a" not held
		}
		out = l.Send("b")
		if len(out) != 0 {
			break // "b" overtook; "a" must ride behind it
		}
	}
	if len(out) != 2 || out[0] != "b" || out[1] != "a" {
		t.Fatalf("got %v, want [b a]", out)
	}
	if s := l.Stats(); s.Reordered != 1 || s.Delivered != 2 {
		t.Fatalf("stats: %+v", s)
	}
}

// TestLinkFlush: Flush drains stranded held frames so end-of-round cleanup
// cannot lose them.
func TestLinkFlush(t *testing.T) {
	var l *Link
	for seed := int64(0); ; seed++ {
		l = NewLink(LinkParams{Reorder: 0.5, Seed: seed})
		if out := l.Send("x"); len(out) == 0 {
			break
		}
	}
	out := l.Flush()
	if len(out) != 1 || out[0] != "x" {
		t.Fatalf("flush: got %v, want [x]", out)
	}
	if out = l.Flush(); len(out) != 0 {
		t.Fatalf("second flush not empty: %v", out)
	}
}

// TestLinkClampsNegative: negative probabilities behave as zero.
func TestLinkClampsNegative(t *testing.T) {
	l := NewLink(LinkParams{Loss: -1, Dup: -1, Reorder: -1, Seed: 3})
	for i := 0; i < 50; i++ {
		if out := l.Send(i); len(out) != 1 {
			t.Fatalf("clamped link faulted frame %d: %v", i, out)
		}
	}
}

package netsim

// This file quantifies two §4.2 trade-offs:
//
//  1. the checksum rule — "using the checksum shows benefits only when
//     gamma < beta/4": shipping the full checkpoint costs beta per byte on
//     the bottleneck link, while checksumming costs ~4 arithmetic
//     operations (gamma each) per byte and ships almost nothing;
//  2. semi-blocking (asynchronous) checkpointing — the paper's future-work
//     optimization [27]: overlap the checkpoint transmission with
//     application execution so only the local capture blocks the
//     application.

// EffectiveBeta returns the effective communication cost per byte of the
// full-checkpoint exchange under this model's mapping: the bottleneck link
// carries MaxBuddyLinkLoad checkpoints, so each byte of a checkpoint
// occupies the bottleneck for load/bandwidth seconds.
func (m *Model) EffectiveBeta() float64 {
	return float64(m.Mapping.MaxBuddyLinkLoad()) / m.Params.LinkBandwidth
}

// EffectiveGamma returns the per-byte computation cost of one checksum
// "instruction" in the 4-instructions-per-byte accounting of §4.2:
// gamma = 1/(4*ChecksumBandwidth).
func (m *Model) EffectiveGamma() float64 {
	return 1 / (4 * m.Params.ChecksumBandwidth)
}

// ChecksumBeneficial applies the paper's rule: the checksum method beats
// shipping the full checkpoint when gamma < beta/4.
func (m *Model) ChecksumBeneficial() bool {
	return m.EffectiveGamma() < m.EffectiveBeta()/4
}

// ChecksumAdvantage returns the time saved per checkpoint by the checksum
// method versus the full exchange (negative when the checksum loses). The
// sign agrees with ChecksumBeneficial for large checkpoints, where the
// per-byte terms dominate the fixed latencies.
func (m *Model) ChecksumAdvantage(bytesPerNode float64, scattered bool) float64 {
	full := m.Checkpoint(bytesPerNode, FullCheckpoint, scattered)
	ck := m.Checkpoint(bytesPerNode, Checksum, scattered)
	return full.Total() - ck.Total()
}

// SemiBlockingCheckpoint returns the checkpoint cost when the transfer and
// comparison are overlapped with application execution: the application
// blocks only for the local capture, while the exchange drains in the
// background (its duration still matters for when the next checkpoint may
// start, reported as Background).
type SemiBlockingCost struct {
	// Blocking is the time the application is actually paused (local
	// serialization only).
	Blocking float64
	// Background is the off-critical-path time until the comparison
	// verdict is known.
	Background float64
}

// SemiBlocking evaluates the overlapped variant of a checkpoint round.
func (m *Model) SemiBlocking(bytesPerNode float64, method Method, scattered bool) SemiBlockingCost {
	c := m.Checkpoint(bytesPerNode, method, scattered)
	return SemiBlockingCost{
		Blocking:   c.Local,
		Background: c.Transfer + c.Compare,
	}
}

// SemiBlockingSpeedup returns the ratio of blocking time saved:
// blocking(semi) / total(blocking variant).
func (m *Model) SemiBlockingSpeedup(bytesPerNode float64, method Method, scattered bool) float64 {
	c := m.Checkpoint(bytesPerNode, method, scattered)
	if c.Total() == 0 {
		return 1
	}
	return m.SemiBlocking(bytesPerNode, method, scattered).Blocking / c.Total()
}

package ampi

import (
	"fmt"
	"math"
	"sync"
	"testing"

	"acr/internal/pup"
	"acr/internal/runtime"
)

// harness runs fn on every rank of both replicas and returns per-rank
// results of replica 0.
func harness(t *testing.T, nodes, tasksPer int, fn func(r *Rank) (float64, error)) []float64 {
	t.Helper()
	var mu sync.Mutex
	results := make([]float64, nodes*tasksPer)
	factory := func(addr runtime.Addr) runtime.Program {
		return prog{fn: func(ctx *runtime.Ctx) error {
			r := New(ctx)
			v, err := fn(r)
			if err != nil {
				return err
			}
			if addr.Replica == 0 {
				mu.Lock()
				results[r.Rank()] = v
				mu.Unlock()
			}
			return nil
		}}
	}
	m, err := runtime.NewMachine(runtime.Config{
		NodesPerReplica: nodes,
		TasksPerNode:    tasksPer,
		Factory:         factory,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Stop)
	m.Start()
	if err := m.Wait(); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	out := make([]float64, len(results))
	copy(out, results)
	return out
}

type prog struct {
	fn func(*runtime.Ctx) error
}

func (p prog) Pup(*pup.PUPer)             {}
func (p prog) Run(ctx *runtime.Ctx) error { return p.fn(ctx) }

func TestRankAndSize(t *testing.T) {
	res := harness(t, 2, 3, func(r *Rank) (float64, error) {
		if r.Size() != 6 {
			return 0, fmt.Errorf("size = %d", r.Size())
		}
		return float64(r.Rank()), nil
	})
	for i, v := range res {
		if v != float64(i) {
			t.Fatalf("rank %d reported %v", i, v)
		}
	}
}

func TestSendRecvPointToPoint(t *testing.T) {
	// Rank 0 sends tagged values to each other rank; each receives only
	// its own tag.
	res := harness(t, 2, 2, func(r *Rank) (float64, error) {
		if r.Rank() == 0 {
			for dst := 1; dst < r.Size(); dst++ {
				if err := r.Send(dst, dst, float64(dst*10)); err != nil {
					return 0, err
				}
			}
			return 0, nil
		}
		v, from, err := r.Recv(0, r.Rank())
		if err != nil {
			return 0, err
		}
		if from != 0 {
			return 0, fmt.Errorf("from = %d", from)
		}
		return v.(float64), nil
	})
	for i := 1; i < 4; i++ {
		if res[i] != float64(i*10) {
			t.Fatalf("rank %d got %v", i, res[i])
		}
	}
}

func TestRecvAnySourceAnyTag(t *testing.T) {
	res := harness(t, 2, 1, func(r *Rank) (float64, error) {
		other := 1 - r.Rank()
		if err := r.Send(other, 7, float64(r.Rank()+1)); err != nil {
			return 0, err
		}
		v, from, err := r.Recv(AnySource, AnyTag)
		if err != nil {
			return 0, err
		}
		if from != other {
			return 0, fmt.Errorf("from = %d, want %d", from, other)
		}
		return v.(float64), nil
	})
	if res[0] != 2 || res[1] != 1 {
		t.Fatalf("res = %v", res)
	}
}

func TestOutOfOrderMatching(t *testing.T) {
	// Rank 0 sends tag 2 then tag 1; rank 1 receives tag 1 first: the
	// tag-2 message must be buffered and delivered later.
	res := harness(t, 2, 1, func(r *Rank) (float64, error) {
		if r.Rank() == 0 {
			if err := r.Send(1, 2, 200.0); err != nil {
				return 0, err
			}
			if err := r.Send(1, 1, 100.0); err != nil {
				return 0, err
			}
			return 0, nil
		}
		first, _, err := r.Recv(0, 1)
		if err != nil {
			return 0, err
		}
		second, _, err := r.Recv(0, 2)
		if err != nil {
			return 0, err
		}
		return first.(float64)*1000 + second.(float64), nil
	})
	if res[1] != 100*1000+200 {
		t.Fatalf("ordered delivery broken: %v", res[1])
	}
}

func TestSendRecvExchange(t *testing.T) {
	// Classic halo swap between neighbours in a ring.
	res := harness(t, 2, 2, func(r *Rank) (float64, error) {
		n := r.Size()
		right := (r.Rank() + 1) % n
		left := (r.Rank() - 1 + n) % n
		got, err := r.SendRecv(right, left, 3, float64(r.Rank()))
		if err != nil {
			return 0, err
		}
		return got.(float64), nil
	})
	for i := range res {
		want := float64((i - 1 + 4) % 4)
		if res[i] != want {
			t.Fatalf("rank %d got %v, want %v", i, res[i], want)
		}
	}
}

func TestAllreduce(t *testing.T) {
	for _, tc := range []struct {
		op   Op
		want float64
	}{
		{Sum, 0 + 1 + 2 + 3},
		{Max, 3},
		{Min, 0},
	} {
		res := harness(t, 2, 2, func(r *Rank) (float64, error) {
			return r.Allreduce(tc.op, float64(r.Rank()))
		})
		for i, v := range res {
			if v != tc.want {
				t.Fatalf("%v: rank %d got %v, want %v", tc.op, i, v, tc.want)
			}
		}
	}
}

func TestAllreduceInt(t *testing.T) {
	res := harness(t, 2, 2, func(r *Rank) (float64, error) {
		v, err := r.AllreduceInt(Max, int64(r.Rank()*100))
		return float64(v), err
	})
	for _, v := range res {
		if v != 300 {
			t.Fatalf("got %v, want 300", v)
		}
	}
}

func TestSingleRankCollectives(t *testing.T) {
	res := harness(t, 1, 1, func(r *Rank) (float64, error) {
		v, err := r.Allreduce(Sum, 42)
		if err != nil || v != 42 {
			return 0, fmt.Errorf("allreduce = %v, %v", v, err)
		}
		iv, err := r.AllreduceInt(Min, 7)
		if err != nil || iv != 7 {
			return 0, fmt.Errorf("allreduceint = %v, %v", iv, err)
		}
		if err := r.Barrier(); err != nil {
			return 0, err
		}
		b, err := r.Bcast(0, 9.0)
		if err != nil || b.(float64) != 9 {
			return 0, fmt.Errorf("bcast = %v, %v", b, err)
		}
		return 1, nil
	})
	if res[0] != 1 {
		t.Fatal("single-rank collectives failed")
	}
}

func TestRepeatedCollectivesDoNotCross(t *testing.T) {
	// Back-to-back allreduces with rank-dependent values: sequence
	// numbering must keep rounds separate.
	res := harness(t, 2, 2, func(r *Rank) (float64, error) {
		total := 0.0
		for round := 1; round <= 20; round++ {
			v, err := r.Allreduce(Sum, float64(round*(r.Rank()+1)))
			if err != nil {
				return 0, err
			}
			total += v
		}
		return total, nil
	})
	// Each round: sum over ranks of round*(rank+1) = round*10.
	want := 0.0
	for round := 1; round <= 20; round++ {
		want += float64(round * 10)
	}
	for i, v := range res {
		if math.Abs(v-want) > 1e-9 {
			t.Fatalf("rank %d total %v, want %v", i, v, want)
		}
	}
}

func TestBarrierSynchronizes(t *testing.T) {
	res := harness(t, 2, 2, func(r *Rank) (float64, error) {
		if err := r.Barrier(); err != nil {
			return 0, err
		}
		return 1, nil
	})
	for _, v := range res {
		if v != 1 {
			t.Fatal("barrier failed")
		}
	}
}

func TestBcast(t *testing.T) {
	res := harness(t, 2, 2, func(r *Rank) (float64, error) {
		var v any = -1.0
		if r.Rank() == 2 {
			v = 123.0
		}
		got, err := r.Bcast(2, v)
		if err != nil {
			return 0, err
		}
		return got.(float64), nil
	})
	for i, v := range res {
		if v != 123 {
			t.Fatalf("rank %d got %v", i, v)
		}
	}
}

func TestSendValidation(t *testing.T) {
	res := harness(t, 1, 2, func(r *Rank) (float64, error) {
		if err := r.Send(0, maxUserTag, 0.0); err == nil {
			return 0, fmt.Errorf("oversized tag accepted")
		}
		if err := r.Send(99, 0, 0.0); err == nil {
			return 0, fmt.Errorf("bad rank accepted")
		}
		if err := r.Send(0, -1, 0.0); err == nil {
			return 0, fmt.Errorf("negative tag accepted")
		}
		return 1, nil
	})
	if res[0] != 1 {
		t.Fatal("validation failed")
	}
}

func TestOpString(t *testing.T) {
	if Sum.String() != "sum" || Max.String() != "max" || Min.String() != "min" || Op(9).String() == "" {
		t.Fatal("Op.String broken")
	}
}

func TestReduce(t *testing.T) {
	res := harness(t, 2, 2, func(r *Rank) (float64, error) {
		v, err := r.Reduce(2, Sum, float64(r.Rank()+1))
		if err != nil {
			return -1, err
		}
		return v, nil
	})
	for i, v := range res {
		if i == 2 && v != 1+2+3+4 {
			t.Fatalf("root got %v, want 10", v)
		}
		if i != 2 && v != 0 {
			t.Fatalf("non-root %d got %v, want 0", i, v)
		}
	}
}

func TestGather(t *testing.T) {
	res := harness(t, 2, 2, func(r *Rank) (float64, error) {
		vals, err := r.Gather(0, float64(r.Rank()*10))
		if err != nil {
			return -1, err
		}
		if r.Rank() != 0 {
			if vals != nil {
				return -1, fmt.Errorf("non-root received data")
			}
			return 1, nil
		}
		for i, v := range vals {
			if v.(float64) != float64(i*10) {
				return -1, fmt.Errorf("slot %d = %v", i, v)
			}
		}
		return 1, nil
	})
	for _, v := range res {
		if v != 1 {
			t.Fatal("gather failed")
		}
	}
}

func TestReduceGatherValidation(t *testing.T) {
	res := harness(t, 1, 1, func(r *Rank) (float64, error) {
		if _, err := r.Reduce(5, Sum, 1); err == nil {
			return -1, fmt.Errorf("bad reduce root accepted")
		}
		if _, err := r.Gather(-1, 1); err == nil {
			return -1, fmt.Errorf("bad gather root accepted")
		}
		// Single-rank fast paths.
		if v, err := r.Reduce(0, Max, 7); err != nil || v != 7 {
			return -1, fmt.Errorf("single-rank reduce = %v, %v", v, err)
		}
		if vals, err := r.Gather(0, 3.0); err != nil || len(vals) != 1 || vals[0].(float64) != 3 {
			return -1, fmt.Errorf("single-rank gather broken")
		}
		return 1, nil
	})
	if res[0] != 1 {
		t.Fatal("validation failed")
	}
}

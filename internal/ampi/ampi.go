// Package ampi layers an MPI-flavoured, rank-oriented interface over the
// message-driven runtime, mirroring how the paper runs its MPI mini-apps
// (HPCCG, miniMD, Jacobi3D-MPI) on AMPI [16]: each MPI rank is a virtualized
// task of the underlying runtime, which is what lets ACR checkpoint,
// compare, and migrate MPI applications exactly like message-driven ones.
//
// A Rank is incarnation-scoped: create it inside Program.Run. Blocking
// receives perform tag/source matching with an unexpected-message queue;
// collectives (Barrier, Allreduce) are hub-based and use a reserved tag
// space plus per-collective sequence numbers, so user tags stay fully
// independent.
package ampi

import (
	"fmt"

	"acr/internal/runtime"
)

// AnySource matches messages from any rank in Recv.
const AnySource = -1

// AnyTag matches any user tag in Recv.
const AnyTag = -1

// maxUserTag bounds application tags; larger tags are reserved for
// collectives.
const maxUserTag = 1 << 20

// Op is a reduction operator.
type Op int

// Reduction operators.
const (
	Sum Op = iota
	Max
	Min
)

func (o Op) String() string {
	switch o {
	case Sum:
		return "sum"
	case Max:
		return "max"
	case Min:
		return "min"
	}
	return fmt.Sprintf("Op(%d)", int(o))
}

func (o Op) combine(a, b float64) float64 {
	switch o {
	case Sum:
		return a + b
	case Max:
		if b > a {
			return b
		}
		return a
	case Min:
		if b < a {
			return b
		}
		return a
	}
	return a
}

// Rank is one MPI-style rank bound to the current task incarnation.
type Rank struct {
	ctx     *runtime.Ctx
	pending []runtime.Message
	collSeq int
}

// New binds a Rank to the task context. The rank id is the task's dense
// index within its replica; ranks never see the other replica.
func New(ctx *runtime.Ctx) *Rank {
	return &Rank{ctx: ctx}
}

// Rank returns this rank's id in [0, Size).
func (r *Rank) Rank() int { return r.ctx.GlobalTask() }

// Size returns the number of ranks.
func (r *Rank) Size() int { return r.ctx.NumTasks() }

// Progress forwards to the runtime's progress/checkpoint hook; call it at
// the end of each iteration after advancing checkpointable state.
func (r *Rank) Progress(iter int) error { return r.ctx.Progress(iter) }

// Send delivers data to another rank with a user tag in [0, 1<<20).
func (r *Rank) Send(dst, tag int, data any) error {
	if tag < 0 || tag >= maxUserTag {
		return fmt.Errorf("ampi: tag %d outside [0, %d)", tag, maxUserTag)
	}
	return r.sendRaw(dst, tag, data)
}

func (r *Rank) sendRaw(dst, tag int, data any) error {
	if dst < 0 || dst >= r.Size() {
		return fmt.Errorf("ampi: rank %d out of range [0, %d)", dst, r.Size())
	}
	return r.ctx.Send(r.ctx.AddrOfGlobal(dst), tag, data)
}

// matches reports whether a message satisfies the (src, tag) selector.
func (r *Rank) matches(m runtime.Message, src, tag int) bool {
	if src != AnySource && m.From != r.ctx.AddrOfGlobal(src) {
		return false
	}
	if tag == AnyTag {
		return m.Tag < maxUserTag // AnyTag never steals collective traffic
	}
	return m.Tag == tag
}

// Recv blocks for a message matching the source and tag selectors
// (AnySource / AnyTag wildcards allowed) and returns its payload and source
// rank. Non-matching messages are queued and delivered to later receives
// in arrival order.
func (r *Rank) Recv(src, tag int) (data any, from int, err error) {
	for i, m := range r.pending {
		if r.matches(m, src, tag) {
			r.pending = append(r.pending[:i], r.pending[i+1:]...)
			return m.Data, r.fromRank(m), nil
		}
	}
	for {
		m, err := r.ctx.Recv()
		if err != nil {
			return nil, 0, err
		}
		if r.matches(m, src, tag) {
			return m.Data, r.fromRank(m), nil
		}
		r.pending = append(r.pending, m)
	}
}

func (r *Rank) fromRank(m runtime.Message) int {
	return m.From.Node*r.ctx.TasksPerNode() + m.From.Task
}

// SendRecv sends to dst and then receives from src with the same tag — the
// halo-exchange staple. Mailboxes are buffered, so the symmetric pattern
// cannot deadlock.
func (r *Rank) SendRecv(dst, src, tag int, data any) (any, error) {
	if err := r.Send(dst, tag, data); err != nil {
		return nil, err
	}
	got, _, err := r.Recv(src, tag)
	return got, err
}

// collective tag layout: two tags (gather, bcast) per collective sequence
// number.
func (r *Rank) collTags() (gather, bcast int) {
	base := maxUserTag + 2*r.collSeq
	r.collSeq++
	return base, base + 1
}

// recvColl receives a collective-phase message with an exact tag from any
// source.
func (r *Rank) recvColl(tag int) (runtime.Message, error) {
	for i, m := range r.pending {
		if m.Tag == tag {
			r.pending = append(r.pending[:i], r.pending[i+1:]...)
			return m, nil
		}
	}
	for {
		m, err := r.ctx.Recv()
		if err != nil {
			return runtime.Message{}, err
		}
		if m.Tag == tag {
			return m, nil
		}
		r.pending = append(r.pending, m)
	}
}

// Allreduce combines value across all ranks with op and returns the result
// on every rank. Every rank must call every collective in the same order.
func (r *Rank) Allreduce(op Op, value float64) (float64, error) {
	gatherTag, bcastTag := r.collTags()
	n := r.Size()
	if n == 1 {
		return value, nil
	}
	if r.Rank() == 0 {
		// Gather all contributions first, then fold in rank order:
		// floating-point reduction must be deterministic or the two
		// replicas' states drift apart in the last bits and SDC
		// detection would flag phantom corruption.
		vals := make([]float64, n)
		vals[0] = value
		for i := 0; i < n-1; i++ {
			m, err := r.recvColl(gatherTag)
			if err != nil {
				return 0, err
			}
			vals[r.fromRank(m)] = m.Data.(float64)
		}
		acc := vals[0]
		for i := 1; i < n; i++ {
			acc = op.combine(acc, vals[i])
		}
		for dst := 1; dst < n; dst++ {
			if err := r.sendRaw(dst, bcastTag, acc); err != nil {
				return 0, err
			}
		}
		return acc, nil
	}
	if err := r.sendRaw(0, gatherTag, value); err != nil {
		return 0, err
	}
	m, err := r.recvColl(bcastTag)
	if err != nil {
		return 0, err
	}
	return m.Data.(float64), nil
}

// AllreduceInt is Allreduce for int64 values.
func (r *Rank) AllreduceInt(op Op, value int64) (int64, error) {
	gatherTag, bcastTag := r.collTags()
	n := r.Size()
	if n == 1 {
		return value, nil
	}
	comb := func(a, b int64) int64 {
		switch op {
		case Sum:
			return a + b
		case Max:
			if b > a {
				return b
			}
			return a
		case Min:
			if b < a {
				return b
			}
			return a
		}
		return a
	}
	if r.Rank() == 0 {
		vals := make([]int64, n)
		vals[0] = value
		for i := 0; i < n-1; i++ {
			m, err := r.recvColl(gatherTag)
			if err != nil {
				return 0, err
			}
			vals[r.fromRank(m)] = m.Data.(int64)
		}
		acc := vals[0]
		for i := 1; i < n; i++ {
			acc = comb(acc, vals[i])
		}
		for dst := 1; dst < n; dst++ {
			if err := r.sendRaw(dst, bcastTag, acc); err != nil {
				return 0, err
			}
		}
		return acc, nil
	}
	if err := r.sendRaw(0, gatherTag, value); err != nil {
		return 0, err
	}
	m, err := r.recvColl(bcastTag)
	if err != nil {
		return 0, err
	}
	return m.Data.(int64), nil
}

// Barrier blocks until every rank has entered it.
func (r *Rank) Barrier() error {
	_, err := r.AllreduceInt(Sum, 0)
	return err
}

// Bcast distributes root's value to every rank and returns it.
func (r *Rank) Bcast(root int, value any) (any, error) {
	gatherTag, bcastTag := r.collTags()
	_ = gatherTag
	n := r.Size()
	if n == 1 {
		return value, nil
	}
	if r.Rank() == root {
		for dst := 0; dst < n; dst++ {
			if dst == root {
				continue
			}
			if err := r.sendRaw(dst, bcastTag, value); err != nil {
				return nil, err
			}
		}
		return value, nil
	}
	m, err := r.recvColl(bcastTag)
	if err != nil {
		return nil, err
	}
	return m.Data, nil
}

// Reduce combines value across all ranks with op; only root receives the
// result (other ranks get the zero value). Every rank must call it.
func (r *Rank) Reduce(root int, op Op, value float64) (float64, error) {
	gatherTag, _ := r.collTags()
	n := r.Size()
	if root < 0 || root >= n {
		return 0, fmt.Errorf("ampi: reduce root %d out of range", root)
	}
	if n == 1 {
		return value, nil
	}
	if r.Rank() == root {
		vals := make([]float64, n)
		vals[root] = value
		for i := 0; i < n-1; i++ {
			m, err := r.recvColl(gatherTag)
			if err != nil {
				return 0, err
			}
			vals[r.fromRank(m)] = m.Data.(float64)
		}
		acc := vals[0]
		for i := 1; i < n; i++ {
			acc = op.combine(acc, vals[i])
		}
		return acc, nil
	}
	if err := r.sendRaw(root, gatherTag, value); err != nil {
		return 0, err
	}
	return 0, nil
}

// Gather collects every rank's value at root, indexed by rank; non-root
// ranks receive nil. Every rank must call it.
func (r *Rank) Gather(root int, value any) ([]any, error) {
	gatherTag, _ := r.collTags()
	n := r.Size()
	if root < 0 || root >= n {
		return nil, fmt.Errorf("ampi: gather root %d out of range", root)
	}
	if r.Rank() == root {
		out := make([]any, n)
		out[root] = value
		for i := 0; i < n-1; i++ {
			m, err := r.recvColl(gatherTag)
			if err != nil {
				return nil, err
			}
			out[r.fromRank(m)] = m.Data
		}
		return out, nil
	}
	if err := r.sendRaw(root, gatherTag, value); err != nil {
		return nil, err
	}
	return nil, nil
}

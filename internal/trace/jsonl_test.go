package trace

import (
	"bytes"
	"strings"
	"testing"
)

func TestJSONLRoundTrip(t *testing.T) {
	events := []Event{
		{Time: 0.001, Kind: Checkpoint, Detail: "checkpoint 1 committed (epoch 1)"},
		{Time: 0.002, Kind: Failure, Detail: "hard error r0/n1"},
		{Time: 0.003, Kind: Inject, Detail: "point=core.capture kind=crash target=r0/n1"},
		{Time: 0.004, Kind: Restart, Detail: "strong: replica 0 rolls back"},
		{Time: 0.005, Kind: Oracle, Detail: "golden-result: ok"},
		{Time: 0.006, Kind: Store},
	}
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, events); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(buf.String(), "\n"); got != len(events) {
		t.Fatalf("wrote %d lines, want %d", got, len(events))
	}
	back, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(events) {
		t.Fatalf("read %d events, want %d", len(back), len(events))
	}
	for i := range events {
		if back[i] != events[i] {
			t.Errorf("event %d: got %+v, want %+v", i, back[i], events[i])
		}
	}
}

func TestJSONLTimelineAndBlankLines(t *testing.T) {
	var tl Timeline
	tl.Add(0.2, Inject, "late")
	tl.Add(0.1, Oracle, "early")
	var buf bytes.Buffer
	if err := WriteTimelineJSONL(&buf, &tl); err != nil {
		t.Fatal(err)
	}
	// Events come out time-sorted.
	got, err := ReadJSONL(strings.NewReader("\n" + buf.String() + "\n\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Detail != "early" || got[1].Detail != "late" {
		t.Fatalf("unexpected events: %+v", got)
	}
}

func TestJSONLErrors(t *testing.T) {
	if _, err := ReadJSONL(strings.NewReader("{not json}\n")); err == nil {
		t.Fatal("malformed line must error")
	}
	if _, err := ReadJSONL(strings.NewReader(`{"t":1,"kind":"nope"}` + "\n")); err == nil {
		t.Fatal("unknown kind must error")
	}
	if _, err := ParseKind("inject"); err != nil {
		t.Fatal(err)
	}
	if _, err := ParseKind("bogus"); err == nil {
		t.Fatal("ParseKind must reject unknown names")
	}
}

func TestNewKindGlyphs(t *testing.T) {
	if Inject.String() != "inject" || Oracle.String() != "oracle" {
		t.Fatal("new kind names broken")
	}
	if Inject.Glyph() != '!' || Oracle.Glyph() != '?' {
		t.Fatal("new kind glyphs broken")
	}
}

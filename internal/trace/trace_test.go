package trace

import (
	"strings"
	"sync"
	"testing"
)

func TestEventsSorted(t *testing.T) {
	var tl Timeline
	tl.Add(5, Checkpoint, "")
	tl.Add(1, Failure, "")
	tl.Add(3, Restart, "")
	ev := tl.Events()
	if len(ev) != 3 {
		t.Fatalf("got %d events", len(ev))
	}
	if ev[0].Time != 1 || ev[1].Time != 3 || ev[2].Time != 5 {
		t.Fatalf("events not sorted: %+v", ev)
	}
}

func TestCountAndOfKind(t *testing.T) {
	var tl Timeline
	for i := 0; i < 4; i++ {
		tl.Add(float64(i), Checkpoint, "")
	}
	tl.Add(10, Failure, "node 3")
	if tl.Count(Checkpoint) != 4 || tl.Count(Failure) != 1 || tl.Count(Restart) != 0 {
		t.Fatal("counts wrong")
	}
	f := tl.OfKind(Failure)
	if len(f) != 1 || f[0].Detail != "node 3" {
		t.Fatalf("OfKind = %+v", f)
	}
}

func TestRenderGlyphs(t *testing.T) {
	var tl Timeline
	tl.Add(0, Checkpoint, "")
	tl.Add(50, Failure, "")
	tl.Add(50.4, Restart, "") // same column as failure at width 100, horizon 100
	tl.Add(99, Checkpoint, "")
	row := tl.Render(100, 100)
	if len(row) != 100 {
		t.Fatalf("row length %d", len(row))
	}
	if row[0] != '|' {
		t.Fatalf("col 0 = %c, want |", row[0])
	}
	// Failure outranks restart in the shared column.
	if row[50] != 'X' {
		t.Fatalf("col 50 = %c, want X", row[50])
	}
	if row[99] != '|' {
		t.Fatalf("col 99 = %c, want |", row[99])
	}
	if !strings.Contains(row, "=") {
		t.Fatal("work glyphs missing")
	}
}

func TestRenderClampsOutOfRange(t *testing.T) {
	var tl Timeline
	tl.Add(-5, Failure, "")
	tl.Add(500, Restart, "")
	row := tl.Render(100, 10)
	if row[0] != 'X' || row[9] != 'R' {
		t.Fatalf("clamping broken: %q", row)
	}
}

func TestRenderDegenerate(t *testing.T) {
	var tl Timeline
	if tl.Render(0, 10) != "" || tl.Render(10, 0) != "" {
		t.Fatal("degenerate render should be empty")
	}
}

func TestSummaryIntervals(t *testing.T) {
	var tl Timeline
	// Checkpoints at 0, 6, 12, then widening to 29: first gap 6, last 17.
	for _, ts := range []float64{0, 6, 12, 29} {
		tl.Add(ts, Checkpoint, "")
	}
	tl.Add(3, Failure, "")
	s := tl.Summary()
	if !strings.Contains(s, "checkpoints=4") || !strings.Contains(s, "failures=1") {
		t.Fatalf("summary = %q", s)
	}
	if !strings.Contains(s, "first-interval=6.0s") || !strings.Contains(s, "last-interval=17.0s") {
		t.Fatalf("summary = %q", s)
	}
}

func TestConcurrentAdd(t *testing.T) {
	var tl Timeline
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(base int) {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				tl.Add(float64(base*100+j), Progress, "")
			}
		}(i)
	}
	wg.Wait()
	if got := tl.Count(Progress); got != 800 {
		t.Fatalf("count = %d, want 800", got)
	}
}

func TestKindStrings(t *testing.T) {
	names := map[Kind]string{Work: "work", Progress: "progress", Checkpoint: "checkpoint", Restart: "restart", Failure: "failure"}
	for k, want := range names {
		if k.String() != want {
			t.Errorf("%d.String() = %q", k, k.String())
		}
	}
	if Kind(42).String() == "" {
		t.Fatal("unknown kind should format")
	}
	if Checkpoint.Glyph() != '|' || Failure.Glyph() != 'X' || Restart.Glyph() != 'R' {
		t.Fatal("glyphs broken")
	}
}

// Package trace records timestamped runtime events and renders them as the
// ASCII counterpart of the paper's timeline figures: Figure 12's adaptivity
// profile (work interrupted by checkpoint and failure lines) and Figure 5's
// per-scheme control flow.
package trace

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Kind classifies an event.
type Kind int

// Event kinds, in increasing display precedence: when several events share
// one timeline column, the highest-precedence glyph wins.
const (
	Work Kind = iota
	Progress
	Checkpoint
	Restart
	Failure
	// Store carries checkpoint-storage telemetry (bytes written, chunks
	// reused by the delta tier, compare time, localized chunk index) from
	// the ckptstore subsystem. Store events annotate the timeline but do
	// not draw on it.
	Store
	// Inject marks a chaos-engine fault injection (internal/chaos): the
	// detail names the injection point, fault kind, and target.
	Inject
	// Oracle marks an invariant-oracle verdict (internal/chaos): a checked
	// invariant passing or firing at the end of a chaos run.
	Oracle
	// Fold marks degraded-mode events: a failed node folded onto a
	// survivor after spare exhaustion, or folded nodes re-expanded onto a
	// freed spare (internal/core's shrink/expand path).
	Fold
	// Net carries hardened-exchange telemetry: per-transfer chunk and
	// retransmission counts from the lossy-link checkpoint exchange.
	// Like Store, Net events annotate the timeline without drawing on it.
	Net
	// Fleet carries multi-job scheduler events (internal/fleet): job
	// admission, spare grants and preemptions, bandwidth-arbiter waits.
	// Like Store and Net, Fleet events annotate without drawing.
	Fleet
	// Pipeline carries per-round overlap accounting from the pipelined
	// commit path (internal/core): busy-vs-wall time per capture /
	// exchange / compare stage. Annotates without drawing.
	Pipeline
	// Remote carries remote checkpoint tier telemetry (internal/ckptstore's
	// Remote/Resilient pair and the core tier-3 flush path): remote flush
	// completions and failures, breaker trips and re-closes, failovers to
	// the local fallback. Annotates without drawing.
	Remote
)

// Glyph returns the timeline character for the kind.
func (k Kind) Glyph() byte {
	switch k {
	case Checkpoint:
		return '|'
	case Failure:
		return 'X'
	case Restart:
		return 'R'
	case Progress:
		return '.'
	case Inject:
		return '!'
	case Oracle:
		return '?'
	case Fold:
		return 'F'
	default:
		return ' '
	}
}

func (k Kind) String() string {
	switch k {
	case Work:
		return "work"
	case Progress:
		return "progress"
	case Checkpoint:
		return "checkpoint"
	case Restart:
		return "restart"
	case Failure:
		return "failure"
	case Store:
		return "store"
	case Inject:
		return "inject"
	case Oracle:
		return "oracle"
	case Fold:
		return "fold"
	case Net:
		return "net"
	case Fleet:
		return "fleet"
	case Pipeline:
		return "pipeline"
	case Remote:
		return "remote"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// ParseKind inverts Kind.String.
func ParseKind(s string) (Kind, error) {
	for k := Work; k <= Remote; k++ {
		if k.String() == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("trace: unknown event kind %q", s)
}

// Event is one timestamped occurrence.
type Event struct {
	Time   float64 // seconds
	Kind   Kind
	Detail string
}

// Timeline accumulates events; it is safe for concurrent use.
type Timeline struct {
	mu     sync.Mutex
	events []Event
}

// Add records an event.
func (tl *Timeline) Add(t float64, k Kind, detail string) {
	tl.mu.Lock()
	tl.events = append(tl.events, Event{Time: t, Kind: k, Detail: detail})
	tl.mu.Unlock()
}

// Events returns a time-sorted copy of the recorded events.
func (tl *Timeline) Events() []Event {
	tl.mu.Lock()
	out := make([]Event, len(tl.events))
	copy(out, tl.events)
	tl.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool { return out[i].Time < out[j].Time })
	return out
}

// Count returns the number of recorded events of the kind.
func (tl *Timeline) Count(k Kind) int {
	n := 0
	for _, e := range tl.Events() {
		if e.Kind == k {
			n++
		}
	}
	return n
}

// OfKind returns the time-sorted events of one kind.
func (tl *Timeline) OfKind(k Kind) []Event {
	var out []Event
	for _, e := range tl.Events() {
		if e.Kind == k {
			out = append(out, e)
		}
	}
	return out
}

// Render draws the timeline as a single row of width columns covering
// [0, horizon] seconds, in the style of Figure 12: '=' is application work,
// '|' a checkpoint, 'X' an injected failure, 'R' a restart.
func (tl *Timeline) Render(horizon float64, width int) string {
	if width <= 0 || horizon <= 0 {
		return ""
	}
	row := make([]byte, width)
	for i := range row {
		row[i] = '='
	}
	prec := func(b byte) int {
		switch b {
		case 'X':
			return 4
		case 'R':
			return 3
		case '|':
			return 2
		case '=':
			return 0
		}
		return 1
	}
	for _, e := range tl.Events() {
		if e.Kind == Work || e.Kind == Progress || e.Kind == Store || e.Kind == Net || e.Kind == Fleet || e.Kind == Pipeline || e.Kind == Remote {
			continue
		}
		col := int(e.Time / horizon * float64(width))
		if col < 0 {
			col = 0
		}
		if col >= width {
			col = width - 1
		}
		g := e.Kind.Glyph()
		if prec(g) > prec(row[col]) {
			row[col] = g
		}
	}
	return string(row)
}

// Summary returns a human-readable digest: counts per kind and the
// checkpoint interval trend (first and last gap between checkpoints),
// mirroring the Figure 12 caption.
func (tl *Timeline) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "checkpoints=%d failures=%d restarts=%d",
		tl.Count(Checkpoint), tl.Count(Failure), tl.Count(Restart))
	cks := tl.OfKind(Checkpoint)
	if len(cks) >= 3 {
		first := cks[1].Time - cks[0].Time
		last := cks[len(cks)-1].Time - cks[len(cks)-2].Time
		fmt.Fprintf(&b, " first-interval=%.1fs last-interval=%.1fs", first, last)
	}
	return b.String()
}

package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// This file is the machine-readable counterpart of the ASCII timeline: one
// JSON object per line, the format shared by acrsoak campaign reports and
// chaos run traces, so a soak report and the trace of the run it summarizes
// can be processed by the same tooling.

// jsonEvent is the wire form of an Event. Kind travels as its String so the
// lines stay greppable and stable across Kind renumbering.
type jsonEvent struct {
	Time   float64 `json:"t"`
	Kind   string  `json:"kind"`
	Detail string  `json:"detail,omitempty"`
}

// MarshalJSON encodes the event in wire form.
func (e Event) MarshalJSON() ([]byte, error) {
	return json.Marshal(jsonEvent{Time: e.Time, Kind: e.Kind.String(), Detail: e.Detail})
}

// UnmarshalJSON decodes the wire form.
func (e *Event) UnmarshalJSON(data []byte) error {
	var j jsonEvent
	if err := json.Unmarshal(data, &j); err != nil {
		return err
	}
	k, err := ParseKind(j.Kind)
	if err != nil {
		return err
	}
	*e = Event{Time: j.Time, Kind: k, Detail: j.Detail}
	return nil
}

// WriteJSONL writes the events as JSON Lines: one event object per line.
func WriteJSONL(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw) // Encode appends the newline
	for i, e := range events {
		if err := enc.Encode(e); err != nil {
			return fmt.Errorf("trace: write jsonl event %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// ReadJSONL parses a JSON Lines stream produced by WriteJSONL. Blank lines
// are skipped; a malformed line is an error naming its line number.
func ReadJSONL(r io.Reader) ([]Event, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var out []Event
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		var e Event
		if err := json.Unmarshal([]byte(text), &e); err != nil {
			return nil, fmt.Errorf("trace: jsonl line %d: %w", line, err)
		}
		out = append(out, e)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: read jsonl: %w", err)
	}
	return out, nil
}

// WriteTimelineJSONL writes the timeline's time-sorted events as JSONL.
func WriteTimelineJSONL(w io.Writer, tl *Timeline) error {
	return WriteJSONL(w, tl.Events())
}

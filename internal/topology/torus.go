// Package topology models the 3D-torus interconnect of a Blue Gene/P-class
// machine: node coordinates, the default TXYZ rank order, dimension-ordered
// routing, replica-to-node mapping schemes (default, column, mixed), and
// per-link load accounting for inter-replica checkpoint traffic.
//
// The paper's Figure 6 and the transfer-time components of Figures 8 and 10
// are determined entirely by this package: the load on the most congested
// link under a given mapping sets the checkpoint-exchange time.
package topology

import "fmt"

// Coord is a node coordinate on the torus.
type Coord struct {
	X, Y, Z int
}

// Torus is a 3D torus with the given dimensions. Links are bidirectional;
// each direction is a separate channel (as on BG/P).
type Torus struct {
	DX, DY, DZ int
}

// NewTorus returns a torus with the given dimensions. All dimensions must be
// positive.
func NewTorus(dx, dy, dz int) (Torus, error) {
	if dx <= 0 || dy <= 0 || dz <= 0 {
		return Torus{}, fmt.Errorf("topology: invalid torus dimensions %dx%dx%d", dx, dy, dz)
	}
	return Torus{DX: dx, DY: dy, DZ: dz}, nil
}

// Nodes returns the total number of nodes.
func (t Torus) Nodes() int { return t.DX * t.DY * t.DZ }

// RankOf returns the TXYZ-order rank of a coordinate: X varies fastest and Z
// slowest, matching the BG/P default mapping in which "ranks increase
// slowest along the Z dimension" (§4.2).
func (t Torus) RankOf(c Coord) int {
	return c.X + c.Y*t.DX + c.Z*t.DX*t.DY
}

// CoordOf is the inverse of RankOf.
func (t Torus) CoordOf(rank int) Coord {
	x := rank % t.DX
	y := (rank / t.DX) % t.DY
	z := rank / (t.DX * t.DY)
	return Coord{X: x, Y: y, Z: z}
}

// Contains reports whether the coordinate lies on the torus.
func (t Torus) Contains(c Coord) bool {
	return c.X >= 0 && c.X < t.DX && c.Y >= 0 && c.Y < t.DY && c.Z >= 0 && c.Z < t.DZ
}

// Dim identifies a torus dimension.
type Dim int

// Torus dimensions.
const (
	DimX Dim = iota
	DimY
	DimZ
)

func (d Dim) String() string {
	switch d {
	case DimX:
		return "X"
	case DimY:
		return "Y"
	case DimZ:
		return "Z"
	}
	return fmt.Sprintf("Dim(%d)", int(d))
}

// Link identifies one directional torus link: the channel leaving node From
// along dimension Dim in direction Dir (+1 or -1).
type Link struct {
	From Coord
	Dim  Dim
	Dir  int
}

// LinkIndex returns a dense index for the link, suitable for slice-based
// load accounting. There are Nodes()*6 directional links.
func (t Torus) LinkIndex(l Link) int {
	dir := 0
	if l.Dir > 0 {
		dir = 1
	}
	return (t.RankOf(l.From)*3+int(l.Dim))*2 + dir
}

// NumLinks returns the number of directional links on the torus.
func (t Torus) NumLinks() int { return t.Nodes() * 6 }

// hopsAndDir returns the number of hops and the travel direction (+1/-1)
// along one dimension of extent d, from a to b, taking the shorter way
// around the torus. Ties choose the positive direction.
func hopsAndDir(a, b, d int) (hops, dir int) {
	if a == b {
		return 0, 1
	}
	fwd := ((b-a)%d + d) % d
	bwd := d - fwd
	if fwd <= bwd {
		return fwd, 1
	}
	return bwd, -1
}

// Distance returns the shortest-path hop count between two nodes.
func (t Torus) Distance(a, b Coord) int {
	hx, _ := hopsAndDir(a.X, b.X, t.DX)
	hy, _ := hopsAndDir(a.Y, b.Y, t.DY)
	hz, _ := hopsAndDir(a.Z, b.Z, t.DZ)
	return hx + hy + hz
}

// Route returns the sequence of directional links traversed from a to b
// under deterministic dimension-ordered (X, then Y, then Z) minimal routing,
// the scheme used by BG/P. Ties between torus directions go positive.
func (t Torus) Route(a, b Coord) []Link {
	var links []Link
	cur := a
	step := func(dim Dim, cur *int, target, extent int, mk func(int) Coord) {
		hops, dir := hopsAndDir(*cur, target, extent)
		for i := 0; i < hops; i++ {
			links = append(links, Link{From: mk(*cur), Dim: dim, Dir: dir})
			*cur = ((*cur+dir)%extent + extent) % extent
		}
	}
	step(DimX, &cur.X, b.X, t.DX, func(x int) Coord { return Coord{x, cur.Y, cur.Z} })
	step(DimY, &cur.Y, b.Y, t.DY, func(y int) Coord { return Coord{cur.X, y, cur.Z} })
	step(DimZ, &cur.Z, b.Z, t.DZ, func(z int) Coord { return Coord{cur.X, cur.Y, z} })
	return links
}

// Loads accumulates per-link traffic counts.
type Loads struct {
	torus  Torus
	counts []int
}

// NewLoads returns an empty load accumulator for the torus.
func NewLoads(t Torus) *Loads {
	return &Loads{torus: t, counts: make([]int, t.NumLinks())}
}

// AddRoute routes one message from a to b and adds w units of load to every
// traversed link.
func (l *Loads) AddRoute(a, b Coord, w int) {
	for _, link := range l.torus.Route(a, b) {
		l.counts[l.torus.LinkIndex(link)] += w
	}
}

// Max returns the load on the most congested link.
func (l *Loads) Max() int {
	m := 0
	for _, c := range l.counts {
		if c > m {
			m = c
		}
	}
	return m
}

// Total returns the sum of loads over all links (total link-hops).
func (l *Loads) Total() int {
	s := 0
	for _, c := range l.counts {
		s += c
	}
	return s
}

// Get returns the load on a specific link.
func (l *Loads) Get(link Link) int { return l.counts[l.torus.LinkIndex(link)] }

// Histogram returns a map from load value to the number of links carrying
// exactly that load. Links with zero load are omitted.
func (l *Loads) Histogram() map[int]int {
	h := make(map[int]int)
	for _, c := range l.counts {
		if c > 0 {
			h[c]++
		}
	}
	return h
}

// BisectionLinks returns the number of directional links crossing the
// bisection of the torus along the given dimension (the plane between
// index extent/2-1 and extent/2, plus the wraparound plane). These are the
// links that bottleneck the default replica mapping (§4.2).
func (t Torus) BisectionLinks(d Dim) int {
	switch d {
	case DimX:
		return 2 * t.DY * t.DZ * wrapFactor(t.DX)
	case DimY:
		return 2 * t.DX * t.DZ * wrapFactor(t.DY)
	case DimZ:
		return 2 * t.DX * t.DY * wrapFactor(t.DZ)
	}
	return 0
}

// wrapFactor is 2 when the dimension has a distinct wraparound plane
// (extent > 2), 1 otherwise (extent 2 has a single plane; extent 1 none).
func wrapFactor(extent int) int {
	if extent > 2 {
		return 2
	}
	if extent == 2 {
		return 1
	}
	return 0
}

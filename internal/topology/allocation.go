package topology

import "fmt"

// CoresPerNode is the BG/P SMP-mode core count per node used throughout the
// paper's evaluation.
const CoresPerNode = 4

// Allocation describes a job allocation on the machine: the torus that holds
// both replicas plus the per-replica sizes.
type Allocation struct {
	Torus           Torus
	CoresPerReplica int
	NodesPerReplica int
}

// bgpShapes lists BG/P-style partition shapes by total node count. The Z
// dimension grows first (8 -> 32) and then stays at 32 while X and Y grow,
// which is exactly the behaviour §6.2 uses to explain the 1K->4K growth and
// >=4K flatness of the default-mapping transfer time.
var bgpShapes = map[int][3]int{
	128:    {4, 4, 8},
	256:    {4, 8, 8},
	512:    {8, 8, 8},
	1024:   {8, 8, 16},
	2048:   {8, 8, 32},
	4096:   {8, 16, 32},
	8192:   {16, 16, 32},
	16384:  {16, 32, 32},
	32768:  {32, 32, 32},
	65536:  {32, 32, 64},
	131072: {32, 64, 64},
}

// NewAllocation returns the BG/P-style allocation for the given number of
// cores per replica. Both replicas plus their nodes must fit on a known
// partition shape: total nodes = 2 * coresPerReplica / CoresPerNode.
func NewAllocation(coresPerReplica int) (Allocation, error) {
	if coresPerReplica <= 0 || coresPerReplica%CoresPerNode != 0 {
		return Allocation{}, fmt.Errorf("topology: cores per replica %d not a multiple of %d", coresPerReplica, CoresPerNode)
	}
	nodesPerReplica := coresPerReplica / CoresPerNode
	total := 2 * nodesPerReplica
	shape, ok := bgpShapes[total]
	if !ok {
		return Allocation{}, fmt.Errorf("topology: no BG/P partition shape for %d nodes", total)
	}
	t, err := NewTorus(shape[0], shape[1], shape[2])
	if err != nil {
		return Allocation{}, err
	}
	return Allocation{Torus: t, CoresPerReplica: coresPerReplica, NodesPerReplica: nodesPerReplica}, nil
}

// KnownAllocations returns the cores-per-replica values for which a BG/P
// partition shape is known, in increasing order.
func KnownAllocations() []int {
	var out []int
	for total := range bgpShapes {
		out = append(out, total/2*CoresPerNode)
	}
	// Insertion sort: the list is tiny.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

package topology

import (
	"testing"
	"testing/quick"
)

func mustMapping(t *testing.T, tr Torus, s Scheme, chunk int) *Mapping {
	t.Helper()
	m, err := NewMapping(tr, s, chunk)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func checkMappingInvariants(t *testing.T, m *Mapping) {
	t.Helper()
	tr := m.Torus
	if len(m.Members(0)) != len(m.Members(1)) {
		t.Fatalf("unbalanced replicas: %d vs %d", len(m.Members(0)), len(m.Members(1)))
	}
	if m.NodesPerReplica()*2 != tr.Nodes() {
		t.Fatalf("replicas do not cover the torus")
	}
	for rank := 0; rank < tr.Nodes(); rank++ {
		b := m.BuddyOf(rank)
		if b == rank {
			t.Fatalf("node %d is its own buddy", rank)
		}
		if m.BuddyOf(b) != rank {
			t.Fatalf("buddy not symmetric: %d -> %d -> %d", rank, b, m.BuddyOf(b))
		}
		if m.ReplicaOf(rank) == m.ReplicaOf(b) {
			t.Fatalf("node %d and buddy %d in same replica", rank, b)
		}
	}
}

func TestDefaultMapping(t *testing.T) {
	tr := mustTorus(t, 8, 8, 8)
	m := mustMapping(t, tr, DefaultScheme, 0)
	checkMappingInvariants(t, m)
	// Replica 0 is the low-Z half; buddy of (x,y,z) is (x,y,z+4).
	c := Coord{3, 2, 1}
	if m.ReplicaOf(tr.RankOf(c)) != 0 {
		t.Fatal("low-Z node not in replica 0")
	}
	if got := m.BuddyOf(tr.RankOf(c)); got != tr.RankOf(Coord{3, 2, 5}) {
		t.Fatalf("buddy of %v = %v", c, tr.CoordOf(got))
	}
	// Every buddy pair is DZ/2 hops apart.
	for rank := 0; rank < tr.Nodes(); rank++ {
		if d := m.BuddyDistance(rank); d != 4 {
			t.Fatalf("buddy distance %d, want 4", d)
		}
	}
}

func TestColumnMapping(t *testing.T) {
	tr := mustTorus(t, 8, 8, 8)
	m := mustMapping(t, tr, ColumnScheme, 0)
	checkMappingInvariants(t, m)
	for rank := 0; rank < tr.Nodes(); rank++ {
		if d := m.BuddyDistance(rank); d != 1 {
			t.Fatalf("column buddy distance %d, want 1", d)
		}
	}
}

func TestMixedMapping(t *testing.T) {
	tr := mustTorus(t, 8, 8, 8)
	m := mustMapping(t, tr, MixedScheme, 2)
	checkMappingInvariants(t, m)
	for rank := 0; rank < tr.Nodes(); rank++ {
		if d := m.BuddyDistance(rank); d != 2 {
			t.Fatalf("mixed(2) buddy distance %d, want 2", d)
		}
	}
}

func TestMappingConstraintErrors(t *testing.T) {
	oddZ := mustTorus(t, 8, 8, 7)
	if _, err := NewMapping(oddZ, DefaultScheme, 0); err == nil {
		t.Error("default mapping on odd DZ should fail")
	}
	oddX := mustTorus(t, 7, 8, 8)
	if _, err := NewMapping(oddX, ColumnScheme, 0); err == nil {
		t.Error("column mapping on odd DX should fail")
	}
	tr := mustTorus(t, 8, 8, 8)
	if _, err := NewMapping(tr, MixedScheme, 0); err == nil {
		t.Error("mixed mapping with chunk 0 should fail")
	}
	if _, err := NewMapping(tr, MixedScheme, 3); err == nil {
		t.Error("mixed mapping with 8 %% 6 != 0 should fail")
	}
	if _, err := NewMapping(tr, Scheme(42), 0); err == nil {
		t.Error("unknown scheme should fail")
	}
}

// TestFig6LinkLoads reproduces the load structure of Figure 6: on a 512-node
// 8x8x8 torus, the default mapping's bisection links carry DZ/2 = 4
// messages, the column mapping carries exactly 1 everywhere it is used, and
// mixed mapping with chunk 2 peaks at 2.
func TestFig6LinkLoads(t *testing.T) {
	tr := mustTorus(t, 8, 8, 8)
	cases := []struct {
		scheme Scheme
		chunk  int
		max    int
	}{
		{DefaultScheme, 0, 4},
		{ColumnScheme, 0, 1},
		{MixedScheme, 2, 2},
	}
	for _, c := range cases {
		m := mustMapping(t, tr, c.scheme, c.chunk)
		if got := m.MaxBuddyLinkLoad(); got != c.max {
			t.Errorf("%v: max link load = %d, want %d", c.scheme, got, c.max)
		}
	}
}

// TestDefaultBottleneckGrowsWithZ verifies the §6.2 observation: the default
// mapping's bottleneck is proportional to the Z extent, so transfer cost
// grows from the 8^3 allocation to the Z=32 allocation and then flattens.
func TestDefaultBottleneckGrowsWithZ(t *testing.T) {
	loads := make(map[int]int)
	for _, shape := range [][3]int{{8, 8, 8}, {8, 8, 16}, {8, 8, 32}, {8, 16, 32}, {16, 16, 32}, {32, 32, 32}} {
		tr := mustTorus(t, shape[0], shape[1], shape[2])
		m := mustMapping(t, tr, DefaultScheme, 0)
		loads[tr.DZ] = m.MaxBuddyLinkLoad()
	}
	if loads[8] != 4 || loads[16] != 8 || loads[32] != 16 {
		t.Fatalf("default bottleneck loads = %v, want Z/2 each", loads)
	}
}

func TestColumnLoadFlatAcrossAllocations(t *testing.T) {
	for _, shape := range [][3]int{{8, 8, 8}, {8, 8, 32}, {16, 16, 32}, {32, 32, 32}} {
		tr := mustTorus(t, shape[0], shape[1], shape[2])
		m := mustMapping(t, tr, ColumnScheme, 0)
		if got := m.MaxBuddyLinkLoad(); got != 1 {
			t.Errorf("column max load on %v = %d, want 1", shape, got)
		}
	}
}

func TestMappingProperty(t *testing.T) {
	f := func(sel uint8) bool {
		shapes := [][3]int{{4, 4, 4}, {8, 4, 2}, {8, 8, 8}, {4, 8, 16}}
		shape := shapes[int(sel)%len(shapes)]
		tr, err := NewTorus(shape[0], shape[1], shape[2])
		if err != nil {
			return false
		}
		for _, s := range []Scheme{DefaultScheme, ColumnScheme} {
			m, err := NewMapping(tr, s, 0)
			if err != nil {
				return false
			}
			for rank := 0; rank < tr.Nodes(); rank++ {
				if m.BuddyOf(m.BuddyOf(rank)) != rank {
					return false
				}
				if m.ReplicaOf(rank) == m.ReplicaOf(m.BuddyOf(rank)) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAllocation(t *testing.T) {
	a, err := NewAllocation(1024)
	if err != nil {
		t.Fatal(err)
	}
	if a.NodesPerReplica != 256 {
		t.Fatalf("nodes per replica = %d, want 256", a.NodesPerReplica)
	}
	if a.Torus.Nodes() != 512 {
		t.Fatalf("torus nodes = %d, want 512", a.Torus.Nodes())
	}
	if a.Torus.DZ != 8 {
		t.Fatalf("1K cores/replica should land on Z=8, got %d", a.Torus.DZ)
	}
	a4k, err := NewAllocation(4096)
	if err != nil {
		t.Fatal(err)
	}
	if a4k.Torus.DZ != 32 {
		t.Fatalf("4K cores/replica should land on Z=32, got %d", a4k.Torus.DZ)
	}
	if _, err := NewAllocation(1000); err == nil {
		t.Error("non-multiple of 4 should fail")
	}
	if _, err := NewAllocation(3 * 4); err == nil {
		t.Error("unknown shape should fail")
	}
}

func TestKnownAllocationsSorted(t *testing.T) {
	ks := KnownAllocations()
	if len(ks) == 0 {
		t.Fatal("no known allocations")
	}
	for i := 1; i < len(ks); i++ {
		if ks[i] <= ks[i-1] {
			t.Fatalf("not sorted: %v", ks)
		}
	}
	for _, k := range ks {
		if _, err := NewAllocation(k); err != nil {
			t.Errorf("known allocation %d fails: %v", k, err)
		}
	}
}

func TestSchemeString(t *testing.T) {
	if DefaultScheme.String() != "default" || ColumnScheme.String() != "column" || MixedScheme.String() != "mixed" {
		t.Fatal("Scheme.String broken")
	}
	if Scheme(99).String() == "" {
		t.Fatal("unknown scheme should format")
	}
}

package topology

import "fmt"

// Scheme selects how the two replicas are laid out on the torus (§4.2).
type Scheme int

// Replica mapping schemes from the paper.
const (
	// DefaultScheme is the TXYZ block split: the first half of the ranks
	// (low Z planes) form replica 1, the second half replica 2. Buddy
	// traffic crosses the Z bisection, whose per-link load grows with the
	// Z extent.
	DefaultScheme Scheme = iota
	// ColumnScheme alternates single X columns (and their planes) between
	// the replicas. Every buddy pair is one hop apart, so inter-replica
	// messages never share a link.
	ColumnScheme
	// MixedScheme alternates chunks of columns between the replicas,
	// trading a small amount of link sharing for spatial separation of
	// buddies (resistance to spatially correlated failures).
	MixedScheme
)

func (s Scheme) String() string {
	switch s {
	case DefaultScheme:
		return "default"
	case ColumnScheme:
		return "column"
	case MixedScheme:
		return "mixed"
	}
	return fmt.Sprintf("Scheme(%d)", int(s))
}

// Mapping assigns every torus node to one of the two replicas and pairs each
// node with its buddy in the other replica.
type Mapping struct {
	Torus  Torus
	Scheme Scheme
	// Chunk is the column-chunk width for MixedScheme (ignored otherwise).
	Chunk int

	replica []int // node rank -> 0 or 1
	buddy   []int // node rank -> buddy node rank
	members [2][]int
}

// NewMapping builds a mapping of the torus onto two replicas under the given
// scheme. Constraints: DefaultScheme needs an even DZ; ColumnScheme needs an
// even DX; MixedScheme needs DX divisible by 2*chunk.
func NewMapping(t Torus, s Scheme, chunk int) (*Mapping, error) {
	m := &Mapping{
		Torus:   t,
		Scheme:  s,
		Chunk:   chunk,
		replica: make([]int, t.Nodes()),
		buddy:   make([]int, t.Nodes()),
	}
	switch s {
	case DefaultScheme:
		if t.DZ%2 != 0 {
			return nil, fmt.Errorf("topology: default mapping needs even DZ, got %d", t.DZ)
		}
	case ColumnScheme:
		if t.DX%2 != 0 {
			return nil, fmt.Errorf("topology: column mapping needs even DX, got %d", t.DX)
		}
	case MixedScheme:
		if chunk <= 0 {
			return nil, fmt.Errorf("topology: mixed mapping needs positive chunk, got %d", chunk)
		}
		if t.DX%(2*chunk) != 0 {
			return nil, fmt.Errorf("topology: mixed mapping needs DX %% (2*chunk) == 0, got DX=%d chunk=%d", t.DX, chunk)
		}
	default:
		return nil, fmt.Errorf("topology: unknown scheme %v", s)
	}
	for rank := 0; rank < t.Nodes(); rank++ {
		c := t.CoordOf(rank)
		var rep int
		var bc Coord
		switch s {
		case DefaultScheme:
			half := t.DZ / 2
			if c.Z < half {
				rep = 0
				bc = Coord{c.X, c.Y, c.Z + half}
			} else {
				rep = 1
				bc = Coord{c.X, c.Y, c.Z - half}
			}
		case ColumnScheme:
			if c.X%2 == 0 {
				rep = 0
				bc = Coord{c.X + 1, c.Y, c.Z}
			} else {
				rep = 1
				bc = Coord{c.X - 1, c.Y, c.Z}
			}
		case MixedScheme:
			period := 2 * chunk
			if (c.X/chunk)%2 == 0 {
				rep = 0
				bc = Coord{c.X + chunk, c.Y, c.Z}
			} else {
				rep = 1
				bc = Coord{c.X - chunk, c.Y, c.Z}
			}
			_ = period
		}
		m.replica[rank] = rep
		m.buddy[rank] = t.RankOf(bc)
		m.members[rep] = append(m.members[rep], rank)
	}
	return m, nil
}

// ReplicaOf returns 0 or 1: the replica that owns the node.
func (m *Mapping) ReplicaOf(rank int) int { return m.replica[rank] }

// BuddyOf returns the node rank of the buddy in the other replica.
func (m *Mapping) BuddyOf(rank int) int { return m.buddy[rank] }

// Members returns the node ranks belonging to the given replica, in rank
// order. The slice is shared; callers must not modify it.
func (m *Mapping) Members(rep int) []int { return m.members[rep] }

// NodesPerReplica returns the number of nodes in each replica (they are
// always equal).
func (m *Mapping) NodesPerReplica() int { return len(m.members[0]) }

// BuddyLoads routes one w-unit message from every replica-0 node to its
// buddy (the checkpoint-exchange traffic pattern of §2.1) and returns the
// resulting link loads.
func (m *Mapping) BuddyLoads(w int) *Loads {
	loads := NewLoads(m.Torus)
	for _, rank := range m.members[0] {
		loads.AddRoute(m.Torus.CoordOf(rank), m.Torus.CoordOf(m.buddy[rank]), w)
	}
	return loads
}

// MaxBuddyLinkLoad returns the load on the most congested link when every
// replica-0 node sends one message to its buddy. This is the quantity that
// bounds checkpoint-transfer time in §6.2: under the default mapping it
// equals DZ/2, under column mapping 1, and under mixed mapping the chunk
// width.
func (m *Mapping) MaxBuddyLinkLoad() int { return m.BuddyLoads(1).Max() }

// BuddyDistance returns the hop distance between a node and its buddy.
func (m *Mapping) BuddyDistance(rank int) int {
	return m.Torus.Distance(m.Torus.CoordOf(rank), m.Torus.CoordOf(m.buddy[rank]))
}

package topology

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func mustTorus(t *testing.T, dx, dy, dz int) Torus {
	t.Helper()
	tr, err := NewTorus(dx, dy, dz)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestNewTorusInvalid(t *testing.T) {
	for _, dims := range [][3]int{{0, 1, 1}, {1, -1, 1}, {1, 1, 0}} {
		if _, err := NewTorus(dims[0], dims[1], dims[2]); err == nil {
			t.Errorf("NewTorus(%v) succeeded, want error", dims)
		}
	}
}

func TestRankCoordRoundTrip(t *testing.T) {
	tr := mustTorus(t, 3, 5, 7)
	for rank := 0; rank < tr.Nodes(); rank++ {
		c := tr.CoordOf(rank)
		if !tr.Contains(c) {
			t.Fatalf("CoordOf(%d) = %v outside torus", rank, c)
		}
		if got := tr.RankOf(c); got != rank {
			t.Fatalf("RankOf(CoordOf(%d)) = %d", rank, got)
		}
	}
}

func TestTXYZOrder(t *testing.T) {
	tr := mustTorus(t, 4, 3, 2)
	// X varies fastest: ranks 0..3 are the X column at y=0,z=0.
	for x := 0; x < 4; x++ {
		if got := tr.RankOf(Coord{x, 0, 0}); got != x {
			t.Fatalf("RankOf(%d,0,0) = %d, want %d", x, got, x)
		}
	}
	// Z varies slowest.
	if got := tr.RankOf(Coord{0, 0, 1}); got != 12 {
		t.Fatalf("RankOf(0,0,1) = %d, want 12", got)
	}
}

func TestHopsAndDir(t *testing.T) {
	cases := []struct {
		a, b, d, hops, dir int
	}{
		{0, 0, 8, 0, 1},
		{0, 3, 8, 3, 1},
		{0, 4, 8, 4, 1},  // tie goes positive
		{0, 5, 8, 3, -1}, // wrap is shorter
		{7, 0, 8, 1, 1},
		{2, 1, 8, 1, -1},
	}
	for _, c := range cases {
		hops, dir := hopsAndDir(c.a, c.b, c.d)
		if hops != c.hops || dir != c.dir {
			t.Errorf("hopsAndDir(%d,%d,%d) = (%d,%d), want (%d,%d)", c.a, c.b, c.d, hops, dir, c.hops, c.dir)
		}
	}
}

func TestRouteLengthEqualsDistance(t *testing.T) {
	tr := mustTorus(t, 4, 4, 4)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		a := tr.CoordOf(rng.Intn(tr.Nodes()))
		b := tr.CoordOf(rng.Intn(tr.Nodes()))
		route := tr.Route(a, b)
		if len(route) != tr.Distance(a, b) {
			t.Fatalf("route %v->%v has %d links, distance %d", a, b, len(route), tr.Distance(a, b))
		}
	}
}

func TestRouteIsConnected(t *testing.T) {
	tr := mustTorus(t, 5, 3, 4)
	apply := func(c Coord, l Link) Coord {
		if l.From != c {
			t.Fatalf("link %v does not start at %v", l, c)
		}
		switch l.Dim {
		case DimX:
			c.X = ((c.X+l.Dir)%tr.DX + tr.DX) % tr.DX
		case DimY:
			c.Y = ((c.Y+l.Dir)%tr.DY + tr.DY) % tr.DY
		case DimZ:
			c.Z = ((c.Z+l.Dir)%tr.DZ + tr.DZ) % tr.DZ
		}
		return c
	}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 100; i++ {
		a := tr.CoordOf(rng.Intn(tr.Nodes()))
		b := tr.CoordOf(rng.Intn(tr.Nodes()))
		cur := a
		for _, l := range tr.Route(a, b) {
			cur = apply(cur, l)
		}
		if cur != b {
			t.Fatalf("route %v->%v ends at %v", a, b, cur)
		}
	}
}

func TestRouteProperty(t *testing.T) {
	tr := mustTorus(t, 8, 8, 8)
	f := func(ar, br uint16) bool {
		a := tr.CoordOf(int(ar) % tr.Nodes())
		b := tr.CoordOf(int(br) % tr.Nodes())
		route := tr.Route(a, b)
		// Dimension-ordered: dims along the route never decrease.
		last := DimX
		for _, l := range route {
			if l.Dim < last {
				return false
			}
			last = l.Dim
		}
		return len(route) == tr.Distance(a, b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLinkIndexUnique(t *testing.T) {
	tr := mustTorus(t, 3, 3, 3)
	seen := make(map[int]bool)
	for rank := 0; rank < tr.Nodes(); rank++ {
		for _, dim := range []Dim{DimX, DimY, DimZ} {
			for _, dir := range []int{-1, 1} {
				idx := tr.LinkIndex(Link{From: tr.CoordOf(rank), Dim: dim, Dir: dir})
				if idx < 0 || idx >= tr.NumLinks() {
					t.Fatalf("index %d out of range", idx)
				}
				if seen[idx] {
					t.Fatalf("duplicate link index %d", idx)
				}
				seen[idx] = true
			}
		}
	}
	if len(seen) != tr.NumLinks() {
		t.Fatalf("got %d distinct indices, want %d", len(seen), tr.NumLinks())
	}
}

func TestLoadsAccounting(t *testing.T) {
	tr := mustTorus(t, 8, 1, 1)
	loads := NewLoads(tr)
	loads.AddRoute(Coord{0, 0, 0}, Coord{2, 0, 0}, 1)
	loads.AddRoute(Coord{1, 0, 0}, Coord{3, 0, 0}, 2)
	// Link 1->2 carries both routes: 1 + 2.
	if got := loads.Get(Link{From: Coord{1, 0, 0}, Dim: DimX, Dir: 1}); got != 3 {
		t.Fatalf("link 1->2 load = %d, want 3", got)
	}
	if loads.Max() != 3 {
		t.Fatalf("max = %d, want 3", loads.Max())
	}
	if loads.Total() != 2+4 {
		t.Fatalf("total = %d, want 6", loads.Total())
	}
}

func TestDimString(t *testing.T) {
	if DimX.String() != "X" || DimY.String() != "Y" || DimZ.String() != "Z" {
		t.Fatal("Dim.String() broken")
	}
	if Dim(9).String() == "" {
		t.Fatal("unknown dim should still format")
	}
}

func TestBisectionLinks(t *testing.T) {
	tr := mustTorus(t, 8, 8, 8)
	// Z bisection: two cut planes (middle + wrap), 8x8 links each, both
	// directions => 2 * 64 * 2 = 256.
	if got := tr.BisectionLinks(DimZ); got != 256 {
		t.Fatalf("Z bisection = %d, want 256", got)
	}
	if tr.BisectionLinks(DimX) != tr.BisectionLinks(DimZ) {
		t.Fatal("cubic torus bisections must match")
	}
	small := mustTorus(t, 4, 4, 2)
	// extent 2: a single plane, no distinct wrap.
	if got := small.BisectionLinks(DimZ); got != 2*4*4 {
		t.Fatalf("Z=2 bisection = %d, want 32", got)
	}
	line := mustTorus(t, 4, 4, 1)
	if got := line.BisectionLinks(DimZ); got != 0 {
		t.Fatalf("Z=1 bisection = %d, want 0", got)
	}
	if Dim(9).String() == "" {
		t.Fatal("unknown dim")
	}
	if mustTorus(t, 2, 2, 2).BisectionLinks(Dim(9)) != 0 {
		t.Fatal("unknown dim bisection should be 0")
	}
}

package topology

import "testing"

func BenchmarkRoute(b *testing.B) {
	tr, err := NewTorus(16, 16, 32)
	if err != nil {
		b.Fatal(err)
	}
	a := Coord{0, 0, 0}
	c := Coord{8, 8, 16}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := tr.Route(a, c); len(got) == 0 {
			b.Fatal("empty route")
		}
	}
}

func BenchmarkBuddyLoads(b *testing.B) {
	tr, err := NewTorus(16, 16, 32)
	if err != nil {
		b.Fatal(err)
	}
	m, err := NewMapping(tr, DefaultScheme, 0)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if m.BuddyLoads(1).Max() == 0 {
			b.Fatal("no load")
		}
	}
}

func BenchmarkMappingConstruction(b *testing.B) {
	tr, err := NewTorus(32, 32, 32)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NewMapping(tr, ColumnScheme, 0); err != nil {
			b.Fatal(err)
		}
	}
}

package sim

import (
	"fmt"
	"sync"
)

// Sharded runs several independent Engines in lockstep time windows — the
// scaling escape hatch for fleet-sized simulations. A single event loop
// serializes every job's events through one heap; at fleet scale (dozens of
// jobs, 100k+ simulated cores) the loop becomes the bottleneck even though
// the jobs never interact. Sharding gives each job (or group of jobs) its
// own engine and advances all of them in parallel, one barrier window at a
// time:
//
//	t ──────▶ t+W ──────▶ t+2W ─ ...
//	   shard 0 runs [t, t+W]   ─┐
//	   shard 1 runs [t, t+W]   ─┼─ barrier ─▶ OnWindow(t+W) ─▶ next window
//	   shard k runs [t, t+W]   ─┘
//
// Within a window the shards are free-running and MUST NOT touch each
// other: an event may only schedule follow-ups on its own shard. Cross-
// shard coupling happens exclusively at the barrier, through OnWindow —
// the fleet-level clock: every shard's virtual clock is parked at the
// window edge when it runs, so OnWindow sees a consistent global time and
// may mutate state the next window's events will read (for example a
// shared disk-bandwidth congestion factor). This split keeps every shard
// bit-deterministic: each shard's event order is a pure function of its
// own schedule, and the barrier sequence is a pure function of the window
// size.
type Sharded struct {
	shards []*Engine
	window float64

	// OnWindow, if non-nil, runs at every barrier with all shard clocks
	// parked at t (the window edge just completed). It is the only legal
	// place for cross-shard state exchange.
	OnWindow func(t float64)
}

// DefaultWindow is the barrier window used when NewSharded is given a
// non-positive one.
const DefaultWindow = 1.0

// NewSharded builds n fresh engines behind one barrier clock. The window
// is the lockstep granularity in virtual seconds: smaller windows tighten
// cross-shard coupling at more barrier overhead.
func NewSharded(n int, window float64) *Sharded {
	if n <= 0 {
		panic(fmt.Sprintf("sim: sharded engine needs at least one shard, got %d", n))
	}
	if window <= 0 {
		window = DefaultWindow
	}
	s := &Sharded{window: window}
	for i := 0; i < n; i++ {
		s.shards = append(s.shards, NewEngine())
	}
	return s
}

// Shards returns the shard count.
func (s *Sharded) Shards() int { return len(s.shards) }

// Shard returns shard i's engine for scheduling. Schedule only from the
// owning shard's events (or before Run starts); see the type comment.
func (s *Sharded) Shard(i int) *Engine { return s.shards[i] }

// Window returns the barrier window in virtual seconds.
func (s *Sharded) Window() float64 { return s.window }

// Now returns the fleet clock: the window edge every shard has reached.
// Between Run calls all shards agree on it.
func (s *Sharded) Now() float64 {
	t := 0.0
	for _, sh := range s.shards {
		if sh.Now() > t {
			t = sh.Now()
		}
	}
	return t
}

// Pending returns the total scheduled events across all shards.
func (s *Sharded) Pending() int {
	n := 0
	for _, sh := range s.shards {
		n += sh.Pending()
	}
	return n
}

// nextEventTime returns the earliest pending event time across shards, or
// ok=false when every queue is empty.
func (s *Sharded) nextEventTime() (float64, bool) {
	t, ok := 0.0, false
	for _, sh := range s.shards {
		if sh.Pending() == 0 {
			continue
		}
		if nt := sh.queue[0].Time; !ok || nt < t {
			t, ok = nt, true
		}
	}
	return t, ok
}

// Run advances every shard in lockstep windows until all queues drain or
// the fleet clock reaches horizon (<= 0 means no horizon). Each window is
// executed by one persistent worker goroutine per shard, so the windows'
// fan-out cost is two channel operations per shard, not a goroutine spawn.
// Returns the final fleet clock.
func (s *Sharded) Run(horizon float64) float64 {
	if len(s.shards) == 1 {
		// Degenerate fleet: no barrier needed, but keep OnWindow firing at
		// the same window edges the sharded path would, so single-shard
		// and multi-shard runs of coupled simulations stay comparable.
		return s.runSingle(horizon)
	}
	targets := make([]chan float64, len(s.shards))
	var wg sync.WaitGroup
	var workers sync.WaitGroup
	for i := range s.shards {
		targets[i] = make(chan float64)
		sh := s.shards[i]
		ch := targets[i]
		workers.Add(1)
		go func() {
			defer workers.Done()
			for target := range ch {
				sh.RunUntil(target)
				wg.Done()
			}
		}()
	}
	defer func() {
		for _, ch := range targets {
			close(ch)
		}
		workers.Wait()
	}()

	for {
		start, ok := s.nextEventTime()
		if !ok {
			break
		}
		if horizon > 0 && start > horizon {
			// Nothing left before the horizon: park every clock there.
			for _, sh := range s.shards {
				sh.RunUntil(horizon)
			}
			break
		}
		target := start + s.window
		if horizon > 0 && target > horizon {
			target = horizon
		}
		wg.Add(len(s.shards))
		for i, ch := range targets {
			_ = i
			ch <- target
		}
		wg.Wait()
		if s.OnWindow != nil {
			s.OnWindow(target)
		}
		if horizon > 0 && target >= horizon {
			break
		}
	}
	return s.Now()
}

// runSingle is Run for one shard: same window edges, no worker machinery.
func (s *Sharded) runSingle(horizon float64) float64 {
	sh := s.shards[0]
	for {
		if sh.Pending() == 0 {
			break
		}
		start := sh.queue[0].Time
		if horizon > 0 && start > horizon {
			sh.RunUntil(horizon)
			break
		}
		target := start + s.window
		if horizon > 0 && target > horizon {
			target = horizon
		}
		sh.RunUntil(target)
		if s.OnWindow != nil {
			s.OnWindow(target)
		}
		if horizon > 0 && target >= horizon {
			break
		}
	}
	return sh.Now()
}

// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine advances a virtual clock measured in seconds (float64) and
// dispatches events in nondecreasing time order. Ties are broken by the
// order of scheduling (FIFO among equal timestamps) so that simulations are
// fully deterministic and reproducible. All large-scale ACR experiments
// (Figures 8-12) run on this clock rather than wall time.
package sim

import (
	"container/heap"
	"fmt"
	"math"
)

// Event is a scheduled callback. The callback receives the engine so it can
// schedule follow-up events.
type Event struct {
	Time   float64
	Action func(*Engine)

	seq   uint64 // scheduling order, breaks timestamp ties
	index int    // heap index; -1 once popped or cancelled
}

// Cancelled reports whether the event was removed before firing.
func (e *Event) Cancelled() bool { return e.index == -2 }

type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].Time != q[j].Time {
		return q[i].Time < q[j].Time
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*q)
	*q = append(*q, ev)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*q = old[:n-1]
	return ev
}

// Engine is a discrete-event simulator. The zero value is not usable; create
// one with NewEngine.
type Engine struct {
	now     float64
	queue   eventQueue
	nextSeq uint64
	stopped bool
	// Horizon, if positive, stops the run once the clock would pass it.
	Horizon float64
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current virtual time in seconds.
func (e *Engine) Now() float64 { return e.now }

// Pending returns the number of scheduled, uncancelled events.
func (e *Engine) Pending() int { return len(e.queue) }

// At schedules action to run at absolute time t. Scheduling in the past
// panics: that is always a logic error in the caller.
func (e *Engine) At(t float64, action func(*Engine)) *Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling at %v before now %v", t, e.now))
	}
	if math.IsNaN(t) {
		panic("sim: scheduling at NaN")
	}
	ev := &Event{Time: t, Action: action, seq: e.nextSeq}
	e.nextSeq++
	heap.Push(&e.queue, ev)
	return ev
}

// After schedules action to run d seconds from now.
func (e *Engine) After(d float64, action func(*Engine)) *Event {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return e.At(e.now+d, action)
}

// Cancel removes a scheduled event. Cancelling an already-fired or
// already-cancelled event is a no-op.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.index < 0 {
		return
	}
	heap.Remove(&e.queue, ev.index)
	ev.index = -2
}

// Stop makes Run return after the current event completes.
func (e *Engine) Stop() { e.stopped = true }

// Step fires the next event, if any, and reports whether one fired.
func (e *Engine) Step() bool {
	if len(e.queue) == 0 {
		return false
	}
	ev := heap.Pop(&e.queue).(*Event)
	if e.Horizon > 0 && ev.Time > e.Horizon {
		// Past the horizon: drop the event and report exhaustion. The
		// clock parks exactly at the horizon.
		e.now = e.Horizon
		return false
	}
	e.now = ev.Time
	ev.Action(e)
	return true
}

// Run dispatches events until the queue drains, Stop is called, or the
// horizon is reached. It returns the final clock value.
func (e *Engine) Run() float64 {
	e.stopped = false
	for !e.stopped && e.Step() {
	}
	return e.now
}

// RunUntil advances the clock to at most time t, firing all events scheduled
// strictly before or at t. It returns the clock value (== t unless the
// engine was stopped earlier).
func (e *Engine) RunUntil(t float64) float64 {
	e.stopped = false
	for !e.stopped && len(e.queue) > 0 && e.queue[0].Time <= t {
		e.Step()
	}
	if !e.stopped && e.now < t {
		e.now = t
	}
	return e.now
}

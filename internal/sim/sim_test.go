package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEmptyRun(t *testing.T) {
	e := NewEngine()
	if got := e.Run(); got != 0 {
		t.Fatalf("empty run ended at %v, want 0", got)
	}
	if e.Pending() != 0 {
		t.Fatalf("pending = %d, want 0", e.Pending())
	}
}

func TestEventOrder(t *testing.T) {
	e := NewEngine()
	var fired []float64
	for _, tm := range []float64{3, 1, 2, 1.5} {
		tm := tm
		e.At(tm, func(*Engine) { fired = append(fired, tm) })
	}
	e.Run()
	want := []float64{1, 1.5, 2, 3}
	if len(fired) != len(want) {
		t.Fatalf("fired %v, want %v", fired, want)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired %v, want %v", fired, want)
		}
	}
}

func TestFIFOAmongTies(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(5, func(*Engine) { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("tie order %v not FIFO", order)
		}
	}
}

func TestAfterAccumulates(t *testing.T) {
	e := NewEngine()
	var times []float64
	var step func(*Engine)
	n := 0
	step = func(en *Engine) {
		times = append(times, en.Now())
		n++
		if n < 4 {
			en.After(2.5, step)
		}
	}
	e.After(2.5, step)
	end := e.Run()
	if end != 10 {
		t.Fatalf("end = %v, want 10", end)
	}
	want := []float64{2.5, 5, 7.5, 10}
	for i := range want {
		if times[i] != want[i] {
			t.Fatalf("times = %v, want %v", times, want)
		}
	}
}

func TestCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	ev := e.At(1, func(*Engine) { fired = true })
	e.Cancel(ev)
	e.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	if !ev.Cancelled() {
		t.Fatal("event does not report cancelled")
	}
	// Double cancel is a no-op.
	e.Cancel(ev)
	// Cancel nil is a no-op.
	e.Cancel(nil)
}

func TestCancelOneOfMany(t *testing.T) {
	e := NewEngine()
	var fired []int
	evs := make([]*Event, 5)
	for i := 0; i < 5; i++ {
		i := i
		evs[i] = e.At(float64(i), func(*Engine) { fired = append(fired, i) })
	}
	e.Cancel(evs[2])
	e.Run()
	want := []int{0, 1, 3, 4}
	if len(fired) != len(want) {
		t.Fatalf("fired %v, want %v", fired, want)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired %v, want %v", fired, want)
		}
	}
}

func TestStop(t *testing.T) {
	e := NewEngine()
	count := 0
	for i := 1; i <= 10; i++ {
		e.At(float64(i), func(en *Engine) {
			count++
			if count == 3 {
				en.Stop()
			}
		})
	}
	end := e.Run()
	if count != 3 {
		t.Fatalf("count = %d, want 3", count)
	}
	if end != 3 {
		t.Fatalf("end = %v, want 3", end)
	}
	if e.Pending() != 7 {
		t.Fatalf("pending = %d, want 7", e.Pending())
	}
}

func TestHorizon(t *testing.T) {
	e := NewEngine()
	e.Horizon = 5
	count := 0
	for i := 1; i <= 10; i++ {
		e.At(float64(i), func(*Engine) { count++ })
	}
	end := e.Run()
	if count != 5 {
		t.Fatalf("count = %d, want 5", count)
	}
	if end != 5 {
		t.Fatalf("end = %v, want 5", end)
	}
}

func TestRunUntil(t *testing.T) {
	e := NewEngine()
	var fired []float64
	for _, tm := range []float64{1, 2, 3, 4} {
		tm := tm
		e.At(tm, func(*Engine) { fired = append(fired, tm) })
	}
	e.RunUntil(2.5)
	if len(fired) != 2 {
		t.Fatalf("fired %v, want 2 events", fired)
	}
	if e.Now() != 2.5 {
		t.Fatalf("now = %v, want 2.5", e.Now())
	}
	e.RunUntil(10)
	if len(fired) != 4 {
		t.Fatalf("fired %v, want 4 events", fired)
	}
	if e.Now() != 10 {
		t.Fatalf("now = %v, want 10", e.Now())
	}
}

func TestSchedulePastPanics(t *testing.T) {
	e := NewEngine()
	e.At(5, func(*Engine) {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	e.At(1, func(*Engine) {})
}

func TestNegativeDelayPanics(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Fatal("negative delay did not panic")
		}
	}()
	e.After(-1, func(*Engine) {})
}

// Property: events always fire in sorted time order regardless of the
// scheduling order.
func TestEventOrderProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		e := NewEngine()
		k := int(n%64) + 1
		times := make([]float64, k)
		var fired []float64
		for i := 0; i < k; i++ {
			tm := rng.Float64() * 100
			times[i] = tm
			e.At(tm, func(*Engine) { fired = append(fired, tm) })
		}
		e.Run()
		sort.Float64s(times)
		if len(fired) != len(times) {
			return false
		}
		for i := range times {
			if fired[i] != times[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: interleaving schedule-during-run keeps the clock monotone.
func TestClockMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := NewEngine()
		last := -1.0
		ok := true
		var spawn func(*Engine)
		n := 0
		spawn = func(en *Engine) {
			if en.Now() < last {
				ok = false
			}
			last = en.Now()
			n++
			if n < 100 {
				en.After(rng.Float64(), spawn)
			}
		}
		for i := 0; i < 5; i++ {
			e.At(rng.Float64()*10, spawn)
		}
		e.Run()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEngine(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := NewEngine()
		var step func(*Engine)
		n := 0
		step = func(en *Engine) {
			n++
			if n < 1000 {
				en.After(1, step)
			}
		}
		e.After(1, step)
		e.Run()
	}
}

package sim

import (
	"sync/atomic"
	"testing"
)

// periodicCounter schedules itself every period seconds and counts fires.
func periodicCounter(e *Engine, period float64, fires *atomic.Int64, until float64) {
	var tick func(*Engine)
	tick = func(e *Engine) {
		fires.Add(1)
		if e.Now()+period <= until {
			e.After(period, tick)
		}
	}
	e.After(period, tick)
}

func TestShardedMatchesSequential(t *testing.T) {
	const horizon = 100.0
	// Reference: each shard's schedule run alone on a plain engine.
	periods := []float64{0.5, 0.7, 1.3, 2.9}
	want := make([]int64, len(periods))
	for i, p := range periods {
		e := NewEngine()
		var fires atomic.Int64
		periodicCounter(e, p, &fires, horizon)
		e.Run()
		want[i] = fires.Load()
	}

	s := NewSharded(len(periods), 5.0)
	fires := make([]atomic.Int64, len(periods))
	for i, p := range periods {
		periodicCounter(s.Shard(i), p, &fires[i], horizon)
	}
	s.Run(0)
	for i := range periods {
		if got := fires[i].Load(); got != want[i] {
			t.Errorf("shard %d fired %d events, sequential reference fired %d", i, got, want[i])
		}
	}
}

func TestShardedHorizonParksClocks(t *testing.T) {
	s := NewSharded(3, 2.0)
	var fired atomic.Int64
	for i := 0; i < s.Shards(); i++ {
		periodicCounter(s.Shard(i), 1.0, &fired, 1000)
	}
	end := s.Run(10)
	if end != 10 {
		t.Fatalf("fleet clock parked at %v, want horizon 10", end)
	}
	for i := 0; i < s.Shards(); i++ {
		if now := s.Shard(i).Now(); now != 10 {
			t.Errorf("shard %d clock %v, want 10", i, now)
		}
	}
	// 10 fires per shard (t=1..10).
	if got := fired.Load(); got != 30 {
		t.Errorf("fired %d events before horizon, want 30", got)
	}
}

func TestShardedOnWindowSeesParkedClocks(t *testing.T) {
	s := NewSharded(4, 3.0)
	for i := 0; i < s.Shards(); i++ {
		periodicCounter(s.Shard(i), 1.0, new(atomic.Int64), 30)
	}
	var barriers []float64
	s.OnWindow = func(tm float64) {
		for i := 0; i < s.Shards(); i++ {
			if now := s.Shard(i).Now(); now != tm {
				t.Errorf("at barrier %v shard %d clock is %v", tm, i, now)
			}
		}
		barriers = append(barriers, tm)
	}
	s.Run(0)
	if len(barriers) == 0 {
		t.Fatal("OnWindow never fired")
	}
	for i := 1; i < len(barriers); i++ {
		if barriers[i] <= barriers[i-1] {
			t.Fatalf("barrier times not increasing: %v", barriers)
		}
	}
}

// TestShardedSingleShardWindows pins the degenerate one-shard path to the
// same barrier edges as the multi-shard path: coupled simulations compare
// single- vs multi-shard runs and the OnWindow cadence must match.
func TestShardedSingleShardWindows(t *testing.T) {
	run := func(shardsOfWork int) []float64 {
		s := NewSharded(shardsOfWork, 2.0)
		for i := 0; i < shardsOfWork; i++ {
			periodicCounter(s.Shard(i), 1.0, new(atomic.Int64), 8)
		}
		var edges []float64
		s.OnWindow = func(tm float64) { edges = append(edges, tm) }
		s.Run(0)
		return edges
	}
	one, many := run(1), run(2)
	if len(one) != len(many) {
		t.Fatalf("single-shard barriers %v, multi-shard %v", one, many)
	}
	for i := range one {
		if one[i] != many[i] {
			t.Fatalf("barrier %d: single-shard %v, multi-shard %v", i, one[i], many[i])
		}
	}
}

func TestShardedDeterministicAcrossRuns(t *testing.T) {
	run := func() []int64 {
		s := NewSharded(3, 1.5)
		fires := make([]atomic.Int64, 3)
		for i := range fires {
			periodicCounter(s.Shard(i), 0.3+0.2*float64(i), &fires[i], 50)
		}
		s.Run(0)
		out := make([]int64, 3)
		for i := range fires {
			out[i] = fires[i].Load()
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run disagreement at shard %d: %v vs %v", i, a, b)
		}
	}
}

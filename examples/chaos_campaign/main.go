// Chaos campaign: run a small deterministic fault-injection campaign
// against the live controller and judge every run with the invariant
// oracle, then demonstrate the oracle's sensitivity (an engineered SDC
// escape MUST be flagged) and shrink that failing schedule to its
// 1-minimal core with delta debugging.
//
//	go run ./examples/chaos_campaign
package main

import (
	"fmt"
	"log"

	"acr/internal/chaos"
)

func main() {
	// 1. The stock campaign: every scenario across two seeds, all faults
	// executed, no invariant violated.
	rep, err := chaos.RunCampaign(chaos.CampaignConfig{
		Name:      "example",
		Scenarios: chaos.DefaultCampaign(),
		SeedBase:  1,
		Seeds:     2,
		Parallel:  4,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("campaign %q: %d runs, %d violations\n", rep.Campaign, len(rep.Runs), rep.Violations)
	for _, run := range rep.Runs {
		fmt.Printf("  %-28s seed %d  %s\n", run.Scenario, run.Seed, run.Outcome)
	}
	exercised := 0
	for _, c := range rep.Coverage {
		if c.Exercised {
			exercised++
		}
	}
	fmt.Printf("injection-point coverage: %d/%d\n\n", exercised, len(rep.Coverage))

	// 2. Oracle sensitivity: plant the identical corruption in BOTH
	// buddies' checkpoints — the comparison goes blind, the corrupted
	// epoch commits, and the sdc-escape invariant must fire.
	res, err := chaos.RunScenario(chaos.SensitivityScenario(), 3, 0, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sensitivity check %q seed 3: %s\n", res.Report.Scenario, res.Report.Outcome)
	for _, v := range res.Report.Violations {
		fmt.Printf("  violation %s: %s\n", v.Invariant, v.Detail)
	}

	// 3. Shrink the failing schedule: ddmin keeps only the faults the
	// violation actually needs.
	scn := chaos.SensitivityScenario()
	min, err := chaos.MinimizeSchedule(scn, 3, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("minimized schedule: %d of %d faults remain after %d runs\n",
		len(min.Scenario.Faults), len(scn.Faults), min.Runs)
	for _, f := range min.Scenario.Faults {
		fmt.Printf("  keep: %s on %s at %s occurrence %d\n",
			f.Kind, f.Target.String(), f.Trigger.Point, f.Trigger.Occurrence)
	}
}

// SDC detection: inject a single bit flip into one replica of a live
// HPCCG run and watch ACR catch it at the next checkpoint comparison and
// roll both replicas back — the run still converges to the exact solution.
//
//	go run ./examples/sdc_detection
package main

import (
	"fmt"
	"log"
	"time"

	"acr/internal/apps"
	"acr/internal/core"
	"acr/internal/pup"
	"acr/internal/runtime"
	"acr/internal/trace"
)

func main() {
	tl := &trace.Timeline{}
	ctrl, err := core.New(core.Config{
		NodesPerReplica:    2,
		TasksPerNode:       2,
		Spares:             1,
		Factory:            apps.HPCCGFactory(40),
		Scheme:             core.Strong,
		Comparison:         core.FullCompare,
		CheckpointInterval: 4 * time.Millisecond,
		Timeline:           tl,
	})
	if err != nil {
		log.Fatal(err)
	}
	// Flip one bit of CG state in replica 0, node 1, task 0 at the next
	// checkpoint: the buddy comparison must flag it.
	ctrl.InjectSDCAtNextCheckpoint(runtime.Addr{Replica: 0, Node: 1, Task: 0})

	stats, err := ctrl.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("SDC detected: %d, rollbacks: %d, checkpoints: %d\n",
		stats.SDCDetected, stats.Rollbacks, stats.Checkpoints)
	for _, e := range tl.OfKind(trace.Failure) {
		fmt.Printf("  t=%.4fs %s\n", e.Time, e.Detail)
	}
	// Despite the corruption, CG converged to the all-ones solution.
	data, err := ctrl.Machine().PackTask(runtime.Addr{Replica: 0, Node: 0, Task: 0})
	if err != nil {
		log.Fatal(err)
	}
	var h apps.HPCCG
	if err := pup.Unpack(data, &h); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("CG solution error vs exact answer: %.2e (residual %.2e)\n",
		h.SolutionError(), h.ResidualNorm())
}

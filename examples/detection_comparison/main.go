// Detection comparison: checkpoint-based versus message-based SDC
// detection (§3.3 of the paper). The paper chose checkpoint comparison
// because message comparison cannot see corruption that stays local to a
// task; this example makes both failure modes visible on a live run.
//
//	go run ./examples/detection_comparison
package main

import (
	"fmt"
	"log"

	"acr/internal/pup"
	"acr/internal/runtime"
)

// app sends one of its two state variables every iteration; the other
// never leaves the task.
type app struct {
	Iter, Iters  int
	Sent, Hidden float64
}

func (a *app) Pup(p *pup.PUPer) {
	p.Label("iter")
	p.Int(&a.Iter)
	p.Label("iters")
	p.Int(&a.Iters)
	p.Label("sent")
	p.Float64(&a.Sent)
	p.Label("hidden")
	p.Float64(&a.Hidden)
}

func (a *app) Run(ctx *runtime.Ctx) error {
	n := ctx.NumTasks()
	next := ctx.AddrOfGlobal((ctx.GlobalTask() + 1) % n)
	for a.Iter < a.Iters {
		if err := ctx.Send(next, 1, a.Sent); err != nil {
			return err
		}
		m, err := ctx.Recv()
		if err != nil {
			return err
		}
		a.Sent += m.Data.(float64) * 1e-6
		a.Hidden *= 1.0000001
		a.Iter++
		if err := ctx.Progress(a.Iter - 1); err != nil {
			return err
		}
	}
	return nil
}

func run(corrupt func(*runtime.Machine)) (msgDivergences int, ckptMatch bool) {
	mc := runtime.NewMsgChecker(nil)
	m, err := runtime.NewMachine(runtime.Config{
		NodesPerReplica: 2,
		TasksPerNode:    2,
		Factory: func(runtime.Addr) runtime.Program {
			return &app{Iters: 300, Sent: 1, Hidden: 1}
		},
		MsgChecker: mc,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer m.Stop()
	if corrupt != nil {
		corrupt(m)
	}
	m.Start()
	if err := m.Wait(); err != nil {
		log.Fatal(err)
	}
	msgDivergences = len(mc.Compare(2, 2, true))
	data, err := m.PackTask(runtime.Addr{Replica: 0, Node: 0, Task: 0})
	if err != nil {
		log.Fatal(err)
	}
	res, err := m.CheckTask(runtime.Addr{Replica: 1, Node: 0, Task: 0}, data, 0)
	if err != nil {
		log.Fatal(err)
	}
	return msgDivergences, res.Match
}

func main() {
	fmt.Println("scenario                      message-based   checkpoint-based")
	d, match := run(nil)
	fmt.Printf("%-28s  %-14s  %s\n", "clean run", verdict(d > 0), verdict(!match))

	d, match = run(func(m *runtime.Machine) {
		m.CorruptTask(runtime.Addr{Replica: 0, Node: 0, Task: 0}, func(p pup.Pupable) {
			p.(*app).Sent = 999 // corruption flows into messages
		})
	})
	fmt.Printf("%-28s  %-14s  %s\n", "corrupt communicated state", verdict(d > 0), verdict(!match))

	d, match = run(func(m *runtime.Machine) {
		m.CorruptTask(runtime.Addr{Replica: 0, Node: 0, Task: 0}, func(p pup.Pupable) {
			p.(*app).Hidden = 999 // corruption never leaves the task
		})
	})
	fmt.Printf("%-28s  %-14s  %s\n", "corrupt local-only state", verdict(d > 0), verdict(!match))
	fmt.Println("\nthe local-only row is §3.3's argument: message comparison misses it,")
	fmt.Println("checkpoint comparison catches it — which is why ACR compares checkpoints.")
}

func verdict(detected bool) string {
	if detected {
		return "DETECTED"
	}
	return "missed"
}

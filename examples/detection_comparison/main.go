// Detection comparison: checkpoint-based versus message-based SDC
// detection (§3.3 of the paper). The paper chose checkpoint comparison
// because message comparison cannot see corruption that stays local to a
// task; this example makes both failure modes visible on a live run.
//
//	go run ./examples/detection_comparison
package main

import (
	"fmt"
	"log"
	"math"

	"acr/internal/apps"
	"acr/internal/checksum"
	"acr/internal/ckptstore"
	"acr/internal/pup"
	"acr/internal/runtime"
)

// app sends one of its two state variables every iteration; the other
// never leaves the task.
type app struct {
	Iter, Iters  int
	Sent, Hidden float64
}

func (a *app) Pup(p *pup.PUPer) {
	p.Label("iter")
	p.Int(&a.Iter)
	p.Label("iters")
	p.Int(&a.Iters)
	p.Label("sent")
	p.Float64(&a.Sent)
	p.Label("hidden")
	p.Float64(&a.Hidden)
}

func (a *app) Run(ctx *runtime.Ctx) error {
	n := ctx.NumTasks()
	next := ctx.AddrOfGlobal((ctx.GlobalTask() + 1) % n)
	for a.Iter < a.Iters {
		if err := ctx.Send(next, 1, a.Sent); err != nil {
			return err
		}
		m, err := ctx.Recv()
		if err != nil {
			return err
		}
		a.Sent += m.Data.(float64) * 1e-6
		a.Hidden *= 1.0000001
		a.Iter++
		if err := ctx.Progress(a.Iter - 1); err != nil {
			return err
		}
	}
	return nil
}

func run(corrupt func(*runtime.Machine)) (msgDivergences int, ckptMatch bool) {
	mc := runtime.NewMsgChecker(nil)
	m, err := runtime.NewMachine(runtime.Config{
		NodesPerReplica: 2,
		TasksPerNode:    2,
		Factory: func(runtime.Addr) runtime.Program {
			return &app{Iters: 300, Sent: 1, Hidden: 1}
		},
		MsgChecker: mc,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer m.Stop()
	if corrupt != nil {
		corrupt(m)
	}
	m.Start()
	if err := m.Wait(); err != nil {
		log.Fatal(err)
	}
	msgDivergences = len(mc.Compare(2, 2, true))
	data, err := m.PackTask(runtime.Addr{Replica: 0, Node: 0, Task: 0})
	if err != nil {
		log.Fatal(err)
	}
	res, err := m.CheckTask(runtime.Addr{Replica: 1, Node: 0, Task: 0}, data, 0)
	if err != nil {
		log.Fatal(err)
	}
	return msgDivergences, res.Match
}

func main() {
	fmt.Println("scenario                      message-based   checkpoint-based")
	d, match := run(nil)
	fmt.Printf("%-28s  %-14s  %s\n", "clean run", verdict(d > 0), verdict(!match))

	d, match = run(func(m *runtime.Machine) {
		m.CorruptTask(runtime.Addr{Replica: 0, Node: 0, Task: 0}, func(p pup.Pupable) {
			p.(*app).Sent = 999 // corruption flows into messages
		})
	})
	fmt.Printf("%-28s  %-14s  %s\n", "corrupt communicated state", verdict(d > 0), verdict(!match))

	d, match = run(func(m *runtime.Machine) {
		m.CorruptTask(runtime.Addr{Replica: 0, Node: 0, Task: 0}, func(p pup.Pupable) {
			p.(*app).Hidden = 999 // corruption never leaves the task
		})
	})
	fmt.Printf("%-28s  %-14s  %s\n", "corrupt local-only state", verdict(d > 0), verdict(!match))
	fmt.Println("\nthe local-only row is §3.3's argument: message comparison misses it,")
	fmt.Println("checkpoint comparison catches it — which is why ACR compares checkpoints.")

	chunkLocalizationDemo()
	deltaSavingsDemo()
}

// chunkLocalizationDemo shows what detection looks like once checkpoints
// are chunked: the two-phase compare not only flags the mismatch, it names
// the corrupted chunk, turning "the replicas diverged" into "this 64 KiB
// of this task diverged".
func chunkLocalizationDemo() {
	j := &apps.Jacobi{Iters: 100, BX: 64, BY: 64, BZ: 64}
	j.U = make([]float64, j.BX*j.BY*j.BZ) // 2 MiB of interior state
	for i := range j.U {
		j.U[i] = math.Sin(float64(i) * 0.01)
	}
	clean, err := pup.Pack(j)
	if err != nil {
		log.Fatal(err)
	}
	const cell = 150000
	j.U[cell] += 1e-12 // a silent single-bit-scale upset
	dirty, err := pup.Pack(j)
	if err != nil {
		log.Fatal(err)
	}

	st := ckptstore.NewMem()
	a := ckptstore.Key{Replica: 0, Epoch: 1}
	b := ckptstore.Key{Replica: 1, Epoch: 1}
	if err := st.Put(a, ckptstore.Capture(clean, 0, 0)); err != nil {
		log.Fatal(err)
	}
	if err := st.Put(b, ckptstore.Capture(dirty, 0, 0)); err != nil {
		log.Fatal(err)
	}
	res, err := st.Compare(a, b)
	if err != nil {
		log.Fatal(err)
	}
	nChunks := checksum.NumChunks(len(clean), checksum.DefaultChunkSize)
	fmt.Printf("\nchunk localization: a 1e-12 upset in cell %d of a %d-byte Jacobi block\n", cell, len(clean))
	fmt.Printf("  two-phase compare: %v — chunk %d of %d (%d KiB each)\n",
		res, res.Chunk, nChunks, checksum.DefaultChunkSize>>10)
	fmt.Printf("  so a full re-send after SDC can ship 1 chunk instead of %d\n", nChunks)
}

// deltaSavingsDemo checkpoints consecutive epochs of a mostly-unchanged
// state through the delta store and reports the byte savings over storing
// every epoch in full.
func deltaSavingsDemo() {
	j := &apps.Jacobi{Iters: 100, BX: 64, BY: 64, BZ: 64}
	j.U = make([]float64, j.BX*j.BY*j.BZ)

	st := ckptstore.NewDelta()
	k := ckptstore.Key{Replica: 0, Node: 0, Task: 0}
	var fullBytes int
	const epochs = 4
	for e := uint64(1); e <= epochs; e++ {
		// Each epoch only a thin slab of the block changes (an advancing
		// boundary region), the typical delta-friendly pattern.
		lo := int(e-1) * 4096
		for i := lo; i < lo+4096; i++ {
			j.U[i] += 0.5
		}
		j.Iter = int(e)
		data, err := pup.Pack(j)
		if err != nil {
			log.Fatal(err)
		}
		fullBytes += len(data)
		k.Epoch = e
		if err := st.Put(k, ckptstore.Capture(data, 0, 0)); err != nil {
			log.Fatal(err)
		}
	}
	ctr := st.Counters()
	fmt.Printf("\ndelta checkpoints: %d epochs of a 2 MiB block, ~2%% touched per epoch\n", epochs)
	fmt.Printf("  full checkpoints would store %d bytes; delta stored %d (%.1fx less)\n",
		fullBytes, ctr.BytesWritten, float64(fullBytes)/float64(ctr.BytesWritten))
	fmt.Printf("  chunks reused across epochs: %d, chunks stored: %d\n", ctr.ChunksReused, ctr.ChunksStored)
}

func verdict(detected bool) string {
	if detected {
		return "DETECTED"
	}
	return "missed"
}

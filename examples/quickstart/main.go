// Quickstart: protect your own application with ACR in ~50 lines.
//
// You write a runtime.Program: a Pup method that pipes every field of your
// state through the serialization framework, and a Run loop that calls
// ctx.Progress once per iteration (after advancing the state). ACR does the
// rest — replication, coordinated checkpointing, silent-data-corruption
// detection, and hard-error recovery.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"acr/internal/core"
	"acr/internal/pup"
	"acr/internal/runtime"
)

// counter is the world's smallest checkpointable application: every task
// repeatedly exchanges a value with its ring neighbour and accumulates it.
type counter struct {
	Iter  int
	Total int64
}

func (c *counter) Pup(p *pup.PUPer) {
	p.Label("iter")
	p.Int(&c.Iter)
	p.Label("total")
	p.Int64(&c.Total)
}

func (c *counter) Run(ctx *runtime.Ctx) error {
	me := ctx.GlobalTask()
	next := ctx.AddrOfGlobal((me + 1) % ctx.NumTasks())
	for c.Iter < 30000 {
		if err := ctx.Send(next, 0, int64(me+c.Iter)); err != nil {
			return err
		}
		msg, err := ctx.Recv()
		if err != nil {
			return err
		}
		c.Total += msg.Data.(int64)
		c.Iter++ // advance state before yielding to the checkpoint gate
		if err := ctx.Progress(c.Iter - 1); err != nil {
			return err
		}
	}
	return nil
}

func main() {
	ctrl, err := core.New(core.Config{
		NodesPerReplica:    2,
		TasksPerNode:       2,
		Spares:             1,
		Factory:            func(runtime.Addr) runtime.Program { return &counter{} },
		Scheme:             core.Strong,
		Comparison:         core.FullCompare,
		CheckpointInterval: 5 * time.Millisecond,
		HeartbeatInterval:  time.Millisecond,
		HeartbeatTimeout:   10 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	// Kill a node mid-run; ACR recovers transparently.
	go func() {
		time.Sleep(8 * time.Millisecond)
		ctrl.KillNode(1, 0)
	}()
	stats, err := ctrl.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("finished with %d checkpoints, %d hard error(s) recovered, %d rollback(s)\n",
		stats.Checkpoints, stats.HardErrors, stats.Rollbacks)
	data, err := ctrl.Machine().PackTask(runtime.Addr{Replica: 0, Node: 0, Task: 0})
	if err != nil {
		log.Fatal(err)
	}
	var final counter
	if err := pup.Unpack(data, &final); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("task 0 final state: iter=%d total=%d (identical to a failure-free run)\n",
		final.Iter, final.Total)

	// Where each committed round's blocked time went: capture (packing +
	// chunked checksums), exchange (checkpoint bytes crossing the store
	// boundary), compare (buddy SDC check). The phase arrays are parallel
	// with stats.CheckpointTimes, one entry per committed checkpoint.
	var capture, exchange, compare time.Duration
	for i := range stats.CaptureTimes {
		capture += stats.CaptureTimes[i]
		exchange += stats.ExchangeTimes[i]
		compare += stats.CompareTimes[i]
	}
	fmt.Printf("checkpoint phases over %d round(s): capture=%v exchange=%v compare=%v\n",
		len(stats.CaptureTimes), capture, exchange, compare)
	fmt.Printf("fast path: %d single-pass pack(s), %d two-pass fallback(s); pool: %d/%d buffer reuse hit(s)\n",
		stats.PackFastPath, stats.PackSlowPath, stats.Pool.Hits, stats.Pool.Gets)
}

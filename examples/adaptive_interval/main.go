// Adaptive checkpoint interval: the Figure 12 experiment. A 30-minute
// Jacobi3D run (on the discrete-event clock) suffers 19 failures from a
// decreasing-rate Weibull-class process; ACR refits the failure trend after
// every failure and rederives the Young/Daly period from the *current*
// MTBF, so checkpoints are dense at the start and sparse at the end.
//
//	go run ./examples/adaptive_interval
package main

import (
	"fmt"
	"log"
	"os"

	"acr/internal/expt"
)

func main() {
	if err := expt.FprintFig12(os.Stdout); err != nil {
		log.Fatal(err)
	}
	// Sweep the Weibull shape: the closer to 1 (Poisson), the less the
	// interval moves — showing why adapting matters exactly when the
	// failure process is bursty.
	fmt.Println("\nshape sweep (interval at start -> end):")
	for _, shape := range []float64{0.4, 0.6, 0.8, 1.0} {
		cfg := expt.DefaultFig12Config()
		cfg.Shape = shape
		res, err := expt.Fig12(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  k=%.1f: %5.1fs -> %5.1fs (%d checkpoints, useful %.1f%%)\n",
			shape, res.FirstInterval, res.LastInterval,
			len(res.CheckpointTimes), res.UsefulFraction*100)
	}
}

// Hard-error recovery: run the LULESH-style shock-hydro mini-app three
// times — once under each ACR resilience scheme — killing a node mid-run
// every time, and show that all three recover to the identical final state
// while trading recovery work differently (§2.3 of the paper).
//
//	go run ./examples/hard_error_recovery
package main

import (
	"bytes"
	"fmt"
	"log"
	"time"

	"acr/internal/apps"
	"acr/internal/core"
	"acr/internal/runtime"
)

func runScheme(scheme core.Scheme) ([]byte, core.Stats) {
	ctrl, err := core.New(core.Config{
		NodesPerReplica:    2,
		TasksPerNode:       2,
		Spares:             1,
		Factory:            apps.LuleshFactory(4000),
		Scheme:             scheme,
		Comparison:         core.FullCompare,
		CheckpointInterval: 5 * time.Millisecond,
		HeartbeatInterval:  time.Millisecond,
		HeartbeatTimeout:   8 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	go func() {
		time.Sleep(15 * time.Millisecond)
		ctrl.KillNode(1, 1) // replica 2 crashes
	}()
	stats, err := ctrl.Run()
	if err != nil {
		log.Fatal(err)
	}
	data, err := ctrl.Machine().PackTask(runtime.Addr{Replica: 0, Node: 0, Task: 0})
	if err != nil {
		log.Fatal(err)
	}
	return data, stats
}

func main() {
	var ref []byte
	for _, scheme := range []core.Scheme{core.Strong, core.Medium, core.Weak} {
		data, stats := runScheme(scheme)
		fmt.Printf("%-6s resilience: hard errors %d, rollbacks %d, checkpoints %d, elapsed %v\n",
			scheme, stats.HardErrors, stats.Rollbacks, stats.Checkpoints,
			stats.Elapsed.Round(time.Millisecond))
		if ref == nil {
			ref = data
		} else if !bytes.Equal(ref, data) {
			log.Fatal("schemes disagreed on the final state!")
		}
	}
	fmt.Println("all three schemes recovered to the bit-identical final state")
}

// Mapping study: how replica placement on the torus decides the cost of
// checkpoint exchange (§4.2, Figures 6 and 8). For each BG/P allocation,
// print the bottleneck link load and the resulting Jacobi3D checkpoint
// transfer time under the default, column, mixed, and checksum variants.
//
//	go run ./examples/mapping_study
package main

import (
	"fmt"
	"log"

	"acr/internal/apps"
	"acr/internal/netsim"
	"acr/internal/topology"
)

func main() {
	spec, err := apps.SpecByName("Jacobi3D Charm++")
	if err != nil {
		log.Fatal(err)
	}
	bytesPerNode := spec.CheckpointBytesPerCore * topology.CoresPerNode
	fmt.Printf("%8s %10s | %22s | %22s | %22s | %10s\n",
		"cores/R", "torus", "default (load, time)", "mixed-2 (load, time)", "column (load, time)", "checksum")
	for _, cores := range []int{1024, 2048, 4096, 16384, 65536} {
		alloc, err := topology.NewAllocation(cores)
		if err != nil {
			log.Fatal(err)
		}
		line := fmt.Sprintf("%8d %4dx%dx%d |", cores, alloc.Torus.DX, alloc.Torus.DY, alloc.Torus.DZ)
		for _, v := range []struct {
			scheme topology.Scheme
			chunk  int
		}{{topology.DefaultScheme, 0}, {topology.MixedScheme, 2}, {topology.ColumnScheme, 0}} {
			m, err := topology.NewMapping(alloc.Torus, v.scheme, v.chunk)
			if err != nil {
				log.Fatal(err)
			}
			nm := netsim.New(m, netsim.BGPParams())
			cost := nm.Checkpoint(bytesPerNode, netsim.FullCheckpoint, false)
			line += fmt.Sprintf(" load %3d, %6.3fs      |", m.MaxBuddyLinkLoad(), cost.Transfer)
		}
		mDef, _ := topology.NewMapping(alloc.Torus, topology.DefaultScheme, 0)
		ck := netsim.New(mDef, netsim.BGPParams()).Checkpoint(bytesPerNode, netsim.Checksum, false)
		line += fmt.Sprintf(" %8.3fs", ck.Total())
		fmt.Println(line)
	}
	fmt.Println("\nthe default mapping's bottleneck equals DZ/2 and saturates once Z hits 32 —")
	fmt.Println("exactly the 1K->4K growth and >=4K flatness of Figure 8; column stays at 1.")
}

// Package acr is a Go reproduction of "ACR: Automatic Checkpoint/Restart
// for Soft and Hard Error Protection" (Ni, Meneses, Jain, Kalé; SC '13):
// a fault-tolerance framework that runs an application as two replicas,
// takes coordinated in-memory checkpoints, detects silent data corruption
// by comparing buddy checkpoints, recovers from fail-stop errors under
// three resilience schemes, and adapts the checkpoint interval to the
// observed failure rate.
//
// See README.md for the architecture overview, DESIGN.md for the system
// inventory and experiment index, and EXPERIMENTS.md for paper-vs-measured
// results. The benchmarks in bench_test.go regenerate every table and
// figure of the paper's evaluation.
package acr

#!/usr/bin/env bash
# acrd crash-restart smoke: submit seeded jobs to a live daemon, SIGKILL it
# mid-run, restart with -resume, and require (a) at least one durable epoch
# salvaged, (b) every job driven to completion bit-identical to the golden
# serial ring. Artifacts (loadgen reports, resume audit) land in $OUT_DIR.
#
# Usage: scripts/acrd_smoke.sh [out_dir]
set -euo pipefail

OUT_DIR="${1:-acrd-smoke-out}"
ADDR="127.0.0.1:7949"
BASE="http://$ADDR"
DATA="$OUT_DIR/data"
mkdir -p "$OUT_DIR" "$DATA"

go build -o "$OUT_DIR/acrd" ./cmd/acrd
go build -o "$OUT_DIR/acrload" ./cmd/acrload

wait_healthy() {
  for _ in $(seq 1 100); do
    if curl -fsS "$BASE/healthz" >/dev/null 2>&1; then return 0; fi
    sleep 0.1
  done
  echo "acrd-smoke: daemon never became healthy" >&2
  return 1
}

echo "== life 1: start daemon, submit seeded jobs, wait for durability =="
"$OUT_DIR/acrd" -addr "$ADDR" -data "$DATA" -nodes 32 -spares 2 \
  2>"$OUT_DIR/acrd-life1.log" &
ACRD_PID=$!
trap 'kill -9 $ACRD_PID 2>/dev/null || true' EXIT
wait_healthy

# Long jobs (they must still be running when the daemon dies) that have
# provably flushed at least one durable epoch each before we return.
"$OUT_DIR/acrload" -addr "$BASE" -jobs 4 -seed 1 \
  -iters-min 2000000 -iters-max 3000000 -flush-every 1 \
  -submit-only -out "$OUT_DIR/loadgen-submit.json"

echo "== kill -9 mid-run =="
kill -9 "$ACRD_PID"
wait "$ACRD_PID" 2>/dev/null || true

echo "== life 2: resume, audit, drive jobs home =="
"$OUT_DIR/acrd" -addr "$ADDR" -data "$DATA" -nodes 32 -spares 2 -resume \
  2>"$OUT_DIR/acrd-life2.log" &
ACRD_PID=$!
wait_healthy

curl -fsS "$BASE/api/v1/resume" | tee "$OUT_DIR/resume-report.json"
python3 - "$OUT_DIR/resume-report.json" <<'EOF'
import json, sys
rep = json.load(open(sys.argv[1]))
assert rep["resumed"], "daemon did not resume"
assert rep["readmitted"] == 4, f"readmitted {rep['readmitted']} of 4 jobs"
assert rep["salvaged_epochs"] >= 4, f"salvaged only {rep['salvaged_epochs']} epochs"
for j in rep["jobs"]:
    assert j["state"] == "readmitted", f"job {j['id']} state {j['state']}"
    assert j["salvaged_epochs"], f"job {j['id']} salvaged nothing"
print(f"resume audit ok: {rep['readmitted']} jobs readmitted, "
      f"{rep['salvaged_epochs']} epochs salvaged, {rep['skipped_epochs']} skipped")
EOF

# Adopt the resumed jobs, wait for completion, verify bit-identical
# against the golden serial ring.
"$OUT_DIR/acrload" -addr "$BASE" -wait-existing -verify -timeout 10m \
  -out "$OUT_DIR/loadgen-verify.json"
python3 - "$OUT_DIR/loadgen-verify.json" <<'EOF'
import json, sys
rep = json.load(open(sys.argv[1]))
assert rep["completed"] == 4 and rep["failed"] == 0, rep
assert rep["verified"] == 4 and rep["verify_failures"] == 0, rep
print(f"golden-ring ok: {rep['verified']} jobs bit-identical after resume")
EOF

# Every resumed job must have warm-started (resumed_epoch > 0).
curl -fsS "$BASE/api/v1/jobs" >"$OUT_DIR/jobs-final.json"
python3 - "$OUT_DIR/jobs-final.json" <<'EOF'
import json, sys
jobs = json.load(open(sys.argv[1]))["jobs"]
for j in jobs:
    re = j["result"]["stats"]["resumed_epoch"]
    assert re > 0, f"job {j['id']} cold-started (resumed_epoch 0)"
print("warm-start ok:", [j["result"]["stats"]["resumed_epoch"] for j in jobs])
EOF

curl -fsS "$BASE/metrics" >"$OUT_DIR/metrics-final.txt"
grep -q "acrd_resume_salvaged_epochs" "$OUT_DIR/metrics-final.txt"

kill "$ACRD_PID"
wait "$ACRD_PID" 2>/dev/null || true
trap - EXIT
echo "acrd-smoke: PASS"

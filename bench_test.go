package acr

// One benchmark per table/figure of the paper's evaluation: each bench
// regenerates the figure's data (the same code paths as `acrsim -fig N`)
// and reports the figure's headline quantity as a custom metric, so
// `go test -bench=. -benchmem` doubles as the full reproduction run.

import (
	"strings"
	"testing"
	"time"

	"acr/internal/apps"
	"acr/internal/core"
	"acr/internal/expt"
	"acr/internal/model"
	"acr/internal/runtime"
)

func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if got := len(apps.Table2()); got != 6 {
			b.Fatalf("Table2 has %d entries", got)
		}
	}
}

func BenchmarkFig1(b *testing.B) {
	var pts []expt.Fig1Point
	for i := 0; i < b.N; i++ {
		pts = expt.Fig1()
	}
	for _, p := range pts {
		if p.Sockets == 1048576 && p.FIT == 100 {
			b.ReportMetric(p.ACRUtil, "acr-util-1M")
			b.ReportMetric(p.CkptVuln, "ckpt-vuln-1M")
		}
	}
}

func BenchmarkFig4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		series := expt.Fig4()
		if len(series) != 3 {
			b.Fatal("expected three schemes")
		}
	}
}

func BenchmarkFig5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runs, err := expt.Fig5()
		if err != nil {
			b.Fatal(err)
		}
		if len(runs) != 4 {
			b.Fatal("expected four scenarios")
		}
	}
}

func BenchmarkFig6(b *testing.B) {
	var rows []expt.Fig6Row
	for i := 0; i < b.N; i++ {
		rows = expt.Fig6()
	}
	for _, r := range rows {
		b.ReportMetric(float64(r.MaxLinkLoad), r.Scheme.String()+"-max-load")
	}
}

func BenchmarkFig7(b *testing.B) {
	var rows []expt.Fig7Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = expt.Fig7()
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.SocketsPerReplica == 262144 && r.Delta == 180 {
			b.ReportMetric(r.Util[model.Strong], "strong-util-256K-d180")
			b.ReportMetric(r.Undetected[model.Weak], "weak-undetected-256K-d180")
		}
	}
}

func BenchmarkFig8(b *testing.B) {
	var rows []expt.Fig8Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = expt.Fig8()
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.App == "Jacobi3D Charm++" && r.CoresPerReplica == 65536 {
			b.ReportMetric(r.Cost.Total(), "jacobi-64K-"+r.Variant+"-sec")
		}
	}
}

func BenchmarkFig9(b *testing.B) {
	var rows []expt.OverheadRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = expt.Fig9()
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.App == "Jacobi3D Charm++" && r.SocketsPerReplica == 16384 &&
			r.Scheme == model.Weak && (r.Variant == "default" || r.Variant == "column") {
			b.ReportMetric(r.OverheadPct, "jacobi-16K-"+r.Variant+"-pct")
		}
	}
}

func BenchmarkFig10(b *testing.B) {
	var rows []expt.Fig10Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = expt.Fig10()
		if err != nil {
			b.Fatal(err)
		}
	}
	names := map[string]string{
		"strong":           "strong",
		"medium (default)": "medium-default",
		"medium (column)":  "medium-column",
	}
	for _, r := range rows {
		if r.App == "Jacobi3D Charm++" && r.CoresPerReplica == 65536 {
			if short, ok := names[r.Variant]; ok {
				b.ReportMetric(r.Cost.Total(), "jacobi-64K-"+short+"-sec")
			}
		}
	}
}

func BenchmarkFig11(b *testing.B) {
	var rows []expt.OverheadRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = expt.Fig11()
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.SocketsPerReplica == 16384 && r.Scheme == model.Strong && r.Variant == "default" {
			b.ReportMetric(r.OverheadPct, strings.ReplaceAll(r.App, " ", "-")+"-overall-pct")
		}
	}
}

func BenchmarkFig12(b *testing.B) {
	var res *expt.Fig12Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = expt.Fig12(expt.DefaultFig12Config())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.FirstInterval, "first-interval-sec")
	b.ReportMetric(res.LastInterval, "last-interval-sec")
}

// BenchmarkLiveACR measures a complete protected run (replication,
// periodic checkpointing, SDC comparison) of each mini-app on the live
// runtime — the end-to-end cost of the framework at laptop scale.
func BenchmarkLiveACR(b *testing.B) {
	for _, spec := range apps.Table2() {
		spec := spec
		b.Run(spec.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ctrl, err := core.New(core.Config{
					NodesPerReplica:    2,
					TasksPerNode:       2,
					Spares:             1,
					Factory:            spec.Factory(100),
					Scheme:             core.Strong,
					Comparison:         core.FullCompare,
					CheckpointInterval: 3 * time.Millisecond,
				})
				if err != nil {
					b.Fatal(err)
				}
				stats, err := ctrl.Run()
				if err != nil {
					b.Fatal(err)
				}
				if i == b.N-1 {
					b.ReportMetric(float64(stats.Checkpoints), "checkpoints")
				}
			}
		})
	}
}

// BenchmarkLiveCheckpointRound isolates the cost of one coordinated
// checkpoint + comparison round for a contiguous and a scattered app.
func BenchmarkLiveCheckpointRound(b *testing.B) {
	for _, name := range []string{"Jacobi3D Charm++", "LeanMD"} {
		name := name
		b.Run(name, func(b *testing.B) {
			spec, err := apps.SpecByName(name)
			if err != nil {
				b.Fatal(err)
			}
			// Pack/compare cost on quiescent state, the dominant terms
			// of a checkpoint round.
			m, err := runtime.NewMachine(runtime.Config{
				NodesPerReplica: 1,
				TasksPerNode:    2,
				Factory:         spec.Factory(5),
			})
			if err != nil {
				b.Fatal(err)
			}
			defer m.Stop()
			m.Start()
			if err := m.Wait(); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				data, err := m.PackTask(runtime.Addr{Replica: 0, Node: 0, Task: 0})
				if err != nil {
					b.Fatal(err)
				}
				res, err := m.CheckTask(runtime.Addr{Replica: 1, Node: 0, Task: 0}, data, 0)
				if err != nil || !res.Match {
					b.Fatal("comparison failed")
				}
			}
		})
	}
}

// BenchmarkAblations regenerates the four design-choice ablation studies
// (adaptive vs fixed interval, dual vs TMR, blocking vs semi-blocking,
// memory vs disk) and reports their headline metrics.
func BenchmarkAblations(b *testing.B) {
	var ad, fx expt.AblationRun
	var cross float64
	var semis []expt.SemiBlockingRow
	for i := 0; i < b.N; i++ {
		ad, fx = expt.AdaptiveVsFixed(expt.DefaultAdaptiveAblationConfig())
		var err error
		_, cross, err = expt.DualVsTMRSweep()
		if err != nil {
			b.Fatal(err)
		}
		semis, err = expt.SemiBlockingAblation()
		if err != nil {
			b.Fatal(err)
		}
		if _, err := expt.DiskAblation(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(ad.UsefulFraction-fx.UsefulFraction, "adaptive-gain")
	b.ReportMetric(cross, "tmr-crossover-fit")
	b.ReportMetric(semis[0].HiddenFraction, "semiblocking-hidden-frac")
}
